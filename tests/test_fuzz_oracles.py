"""Oracle-sensitivity tests: every bug-injection kind is caught by the
oracle it targets, and the shrinker reduces the failing program.

An oracle that never fires is a green checkmark over a blind spot, so
each of the four ``BugInjection`` kinds gets the same treatment: the
uninjected run must pass, the injected run must fail *in the targeted
oracle*, and the failure must survive shrinking to a strictly smaller
reproducer.
"""

import pytest

from repro.eval.engine import EvalEngine
from repro.fuzz import (BugInjection, Corpus, FuzzOptions, generate,
                        profile_for_seed, run_campaign, run_oracles,
                        shrink)
from repro.fuzz.faults import ENV_VAR

#: kind -> (seed whose profile exercises it, oracle that must catch it).
#: ``skip-capcheck`` and ``drop-violation`` hide enforcement, so they
#: need a *violating* seed; the other two corrupt state/metrics and fire
#: on any program.
SENSITIVITY = {
    "skip-capcheck": (3, "differential"),
    "drop-violation": (7, "transparency"),
    "corrupt-snapshot": (0, "snapshot"),
    "skew-metric": (1, "conservation"),
}


@pytest.fixture(scope="module")
def programs():
    return {seed: generate(seed, profile_for_seed(seed))
            for seed, _ in SENSITIVITY.values()}


class TestSensitivity:
    def test_chosen_seeds_have_the_right_profiles(self):
        """The table above bakes in the seed->profile rotation; fail
        loudly here (not deep in an oracle) if it ever changes."""
        assert profile_for_seed(3) == "out-of-bounds"
        assert profile_for_seed(7) == "use-after-free"
        assert profile_for_seed(0) == "well-behaved"
        assert profile_for_seed(1) == "well-behaved"

    @pytest.mark.parametrize("kind", sorted(SENSITIVITY))
    def test_clean_run_passes(self, kind, programs):
        seed, oracle = SENSITIVITY[kind]
        report = run_oracles(programs[seed], only=(oracle,))
        assert report.ok, [str(f) for f in report.failures]

    @pytest.mark.parametrize("kind", sorted(SENSITIVITY))
    def test_injected_bug_is_caught(self, kind, programs):
        seed, oracle = SENSITIVITY[kind]
        injection = BugInjection.parse(kind)
        report = run_oracles(programs[seed], injection=injection)
        assert injection.fired > 0, f"{kind}: injection never fired"
        caught = {failure.oracle for failure in report.failures}
        assert oracle in caught, (
            f"{kind}: expected the {oracle} oracle to fail, got "
            f"{[str(f) for f in report.failures]}")

    @pytest.mark.parametrize("kind", sorted(SENSITIVITY))
    def test_failure_shrinks_to_a_smaller_reproducer(self, kind, programs):
        seed, oracle = SENSITIVITY[kind]
        program = programs[seed]

        def still_failing(candidate):
            # Fresh injection per check: firings are stateful counters.
            report = run_oracles(candidate,
                                 injection=BugInjection.parse(kind),
                                 only=(oracle,))
            return not report.ok

        result = shrink(program, still_failing, max_checks=48)
        assert result.shrank, f"{kind}: shrinker removed nothing"
        assert result.program.statement_count < program.statement_count
        # The minimized program still reproduces the failure.
        assert still_failing(result.program)


class TestInjectionPlumbing:
    def test_env_var_round_trip(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "skew-metric:conservation:*@2")
        injection = BugInjection.from_env()
        assert injection is not None
        assert injection.kind == "skew-metric"
        assert injection.role == "conservation:*"
        assert injection.index == 2

    def test_env_var_absent(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert BugInjection.from_env() is None

    def test_indexed_injection_fires_once(self, programs):
        seed, oracle = SENSITIVITY["skew-metric"]
        injection = BugInjection.parse("skew-metric@1")
        run_oracles(programs[seed], injection=injection, only=(oracle,))
        assert injection.fired == 1

    def test_mismatched_role_never_fires(self, programs):
        seed, oracle = SENSITIVITY["skew-metric"]
        injection = BugInjection.parse("skew-metric:no-such-role")
        report = run_oracles(programs[seed], injection=injection,
                             only=(oracle,))
        assert injection.fired == 0
        assert report.ok


class TestCampaignWithInjection:
    def test_bug_campaign_fails_and_writes_reproducers(self, tmp_path):
        engine = EvalEngine(jobs=1, use_cache=False,
                            cache_dir=tmp_path / "cache")
        options = FuzzOptions(seeds=1, seed_base=1,
                              corpus_dir=str(tmp_path / "corpus"),
                              bug="skew-metric")
        report = run_campaign(engine, options)
        assert not report.ok
        assert report.reproducers, "failing campaign produced no reproducer"
        repro = report.reproducers[0]
        assert repro.shrunk_statements < repro.original_statements
        assert "conservation" in repro.oracles
        # The reproducer record landed under failures/, and the tainted
        # run contributed nothing to the corpus proper.
        corpus = Corpus(tmp_path / "corpus")
        assert [str(path) for path in corpus.failures()] == [repro.path]
        assert len(corpus) == 0
        assert "oracle failures:" in report.format_text()
        assert "reproducer:" in report.format_text()
