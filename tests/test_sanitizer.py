"""Unit and integration tests for the AddressSanitizer model."""

import pytest

from repro.core import Chex86Machine, Variant, ViolationKind
from repro.heap import HeapAllocator, heap_library_asm
from repro.isa import Op, Reg, assemble
from repro.memory import Memory
from repro.pipeline.system import System
from repro.sanitizer import (
    AsanRuntime,
    InstrumentationError,
    POISON_FREED,
    POISON_REDZONE,
    REDZONE_BYTES,
    REPORT_LABEL,
    SHADOW_BASE,
    ShadowMemory,
    instrument_program,
    needs_check,
    sanitize,
    shadow_address,
)


def run_asan(body, globals_asm="", trap=True):
    source = (globals_asm + "main:\n" + body + "\n    halt\n"
              + heap_library_asm())
    program = assemble(source, name="asan-test")
    system = System()
    sanitized, runtime, report = sanitize(program, system.allocator)
    machine = Chex86Machine(sanitized, variant=Variant.INSECURE,
                            system=system, host_hooks=runtime.host_hooks(),
                            halt_on_violation=trap)
    result = machine.run(max_instructions=300_000)
    return machine, result, runtime, report


class TestShadowMemory:
    def test_shadow_address_mapping(self):
        assert shadow_address(0x1000) == SHADOW_BASE + 0x1000
        assert shadow_address(0x1007) == SHADOW_BASE + 0x1000  # same word

    def test_poison_unpoison_roundtrip(self):
        shadow = ShadowMemory(Memory())
        shadow.poison_range(0x1000, 32, POISON_REDZONE)
        assert shadow.is_poisoned(0x1010)
        shadow.unpoison_range(0x1000, 32)
        assert not shadow.is_poisoned(0x1010)

    def test_poison_covers_partial_words(self):
        shadow = ShadowMemory(Memory())
        shadow.poison_range(0x1004, 8, POISON_FREED)
        assert shadow.poison_value(0x1000) == POISON_FREED
        assert shadow.poison_value(0x1008) == POISON_FREED


class TestRuntime:
    def make(self, quarantine=1 << 20):
        return AsanRuntime(HeapAllocator(Memory()), quarantine)

    def test_malloc_surrounded_by_redzones(self):
        runtime = self.make()
        user = runtime.malloc(64)
        assert runtime.shadow.poison_value(user - 8) == POISON_REDZONE
        assert runtime.shadow.poison_value(user + 64) == POISON_REDZONE
        assert not runtime.shadow.is_poisoned(user)
        assert not runtime.shadow.is_poisoned(user + 56)

    def test_free_poisons_object(self):
        runtime = self.make()
        user = runtime.malloc(64)
        runtime.free(user)
        assert runtime.shadow.poison_value(user) == POISON_FREED

    def test_quarantine_delays_reuse(self):
        runtime = self.make()
        first = runtime.malloc(64)
        runtime.free(first)
        second = runtime.malloc(64)
        assert second != first  # quarantined, not immediately reused

    def test_quarantine_eviction_reenables_reuse(self):
        runtime = self.make(quarantine=128)
        first = runtime.malloc(64)
        runtime.free(first)
        for _ in range(4):
            runtime.free(runtime.malloc(64))
        assert runtime.stats.quarantine_evictions > 0

    def test_huge_request_rejected(self):
        runtime = self.make()
        assert runtime.malloc(2 << 30) == 0
        assert runtime.stats.rejected_allocs == 1

    def test_realloc_preserves_and_frees(self):
        runtime = self.make()
        user = runtime.malloc(16)
        runtime.allocator.memory.write_word(user, 99)
        bigger = runtime.realloc(user, 256)
        assert runtime.allocator.memory.read_word(bigger) == 99
        assert runtime.shadow.poison_value(user) == POISON_FREED


class TestInstrumentationPass:
    def test_check_inserted_before_heap_access(self):
        program = assemble("main:\n    mov rax, [rbx]\n    halt\n")
        sanitized, report = instrument_program(program)
        assert report.instrumented_accesses == 1
        ops = [i.op for i in sanitized.instrs]
        assert Op.TEST in ops and Op.JNE in ops

    def test_stack_accesses_skipped(self):
        program = assemble("main:\n    mov rax, [rsp + 8]\n    halt\n")
        sanitized, report = instrument_program(program)
        assert report.instrumented_accesses == 0
        assert report.skipped_stack_accesses == 1

    def test_labels_preserved_on_instrumented_instruction(self):
        program = assemble(
            "main:\n    jmp target\ntarget:\n    mov rax, [rbx]\n    halt\n")
        sanitized, _ = instrument_program(program)
        assert "target" in sanitized.labels
        assert REPORT_LABEL in sanitized.labels

    def test_reserved_register_use_rejected(self):
        program = assemble("main:\n    mov r15, 5\n    halt\n")
        with pytest.raises(InstrumentationError):
            instrument_program(program)

    def test_needs_check_classification(self):
        program = assemble(
            "main:\n    mov rax, [rbx]\n    push rax\n    lea rcx, [rbx]\n"
            "    halt\n")
        flags = [needs_check(i) for i in program.instrs]
        assert flags == [True, False, False, False]


class TestEndToEnd:
    def test_oob_write_detected(self):
        _, result, _, _ = run_asan("""
    mov rdi, 64
    call malloc
    mov [rax + 64], 1
""")
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_uaf_detected_via_quarantine(self):
        _, result, _, _ = run_asan("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, [rbx]
""")
        assert result.violations.count(ViolationKind.USE_AFTER_FREE) == 1

    def test_double_free_detected(self):
        _, result, _, _ = run_asan("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rdi, rbx
    call free
""")
        assert result.violations.count(ViolationKind.DOUBLE_FREE) == 1

    def test_benign_program_passes_with_expansion(self):
        machine, result, _, report = run_asan("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov [rbx], 5
    mov rcx, [rbx]
    mov rdi, rbx
    call free
""")
        assert not result.flagged
        assert result.halted
        assert report.instrumented_accesses == 2
        assert machine.regs[Reg.RCX] == 5

    def test_deep_uaf_defeats_small_quarantine(self):
        """ASan's known limitation: enough churn flushes the quarantine and
        the UAF goes undetected — unlike CHEx86's capability approach."""
        _, result, _, _ = run_asan("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, 0
churn:
    mov rdi, 64
    call malloc
    mov rdi, rax
    call free
    add rcx, 1
    cmp rcx, 40
    jne churn
    mov rdx, [rbx]
""")
        # With the default 1MB quarantine this IS still caught; disable the
        # quarantine (the limit case of enough churn) to show the miss:
        # the freed chunk is reused immediately, the reuse unpoisons the
        # shadow, and the stale pointer reads fresh memory unflagged.
        program = assemble(
            "main:\n"
            "    mov rdi, 64\n    call malloc\n    mov rbx, rax\n"
            "    mov rdi, rax\n    call free\n"
            "    mov rdi, 64\n    call malloc\n"
            "    mov rdx, [rbx]\n    halt\n" + heap_library_asm(),
            name="uaf-churn")
        system = System()
        sanitized, runtime, _ = sanitize(program, system.allocator,
                                         quarantine_capacity=0)
        machine = Chex86Machine(sanitized, variant=Variant.INSECURE,
                                system=system,
                                host_hooks=runtime.host_hooks(),
                                halt_on_violation=True)
        small_q = machine.run(max_instructions=300_000)
        assert not small_q.flagged  # the UAF slipped past ASan
