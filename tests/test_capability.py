"""Unit tests for capabilities and the shadow capability table."""

import pytest

from repro.core import (
    CAPABILITY_BYTES,
    Capability,
    Perm,
    ShadowCapabilityTable,
    ViolationKind,
    WILD_PID,
)


@pytest.fixture
def table():
    return ShadowCapabilityTable()


def generate(table, base, size):
    pid, violation = table.begin_generation(size)
    assert violation is None
    table.end_generation(pid, base)
    return pid


class TestCapability:
    def test_contains(self):
        cap = Capability(pid=1, base=0x1000, bounds=64, perms=Perm.RW | Perm.VALID)
        assert cap.contains(0x1000, 8)
        assert cap.contains(0x1038, 8)
        assert not cap.contains(0x1040, 8)
        assert not cap.contains(0xFF8, 8)

    def test_bounds_field_is_32_bits(self):
        with pytest.raises(ValueError):
            Capability(pid=1, bounds=1 << 32)

    def test_busy_valid_setters(self):
        cap = Capability(pid=1)
        cap.busy = True
        cap.valid = True
        assert cap.busy and cap.valid
        cap.busy = False
        assert not cap.busy and cap.valid


class TestTwoStepGeneration:
    def test_begin_sets_busy_and_bounds(self, table):
        pid, _ = table.begin_generation(128)
        cap = table.get(pid)
        assert cap.busy and not cap.valid
        assert cap.bounds == 128

    def test_end_finalizes(self, table):
        pid, _ = table.begin_generation(128)
        table.end_generation(pid, 0x5000)
        cap = table.get(pid)
        assert not cap.busy and cap.valid
        assert cap.base == 0x5000

    def test_failed_allocation_stays_invalid(self, table):
        pid, _ = table.begin_generation(128)
        table.end_generation(pid, 0)  # malloc returned NULL
        assert not table.get(pid).valid

    def test_pids_unique_and_nonzero(self, table):
        pids = [table.begin_generation(8)[0] for _ in range(100)]
        assert len(set(pids)) == 100
        assert all(p > 0 for p in pids)

    def test_oversized_request_flags_heap_spray(self, table):
        _, violation = table.begin_generation(2 << 30)
        assert violation is not None
        assert violation.kind is ViolationKind.HEAP_SPRAY

    def test_negative_request_flags_heap_spray(self, table):
        _, violation = table.begin_generation(-1)
        assert violation.kind is ViolationKind.HEAP_SPRAY


class TestChecks:
    def test_in_bounds_passes(self, table):
        pid = generate(table, 0x1000, 64)
        assert table.check(pid, 0x1000, 8) is None
        assert table.check(pid, 0x1038, 8) is None

    def test_out_of_bounds(self, table):
        pid = generate(table, 0x1000, 64)
        violation = table.check(pid, 0x1040, 8)
        assert violation.kind is ViolationKind.OUT_OF_BOUNDS

    def test_below_base(self, table):
        pid = generate(table, 0x1000, 64)
        assert table.check(pid, 0xFF8, 8).kind is ViolationKind.OUT_OF_BOUNDS

    def test_use_after_free(self, table):
        pid = generate(table, 0x1000, 64)
        assert table.begin_free(pid) is None
        table.end_free(pid)
        violation = table.check(pid, 0x1000, 8)
        assert violation.kind is ViolationKind.USE_AFTER_FREE

    def test_unknown_pid_is_wild(self, table):
        assert table.check(12345, 0x1000).kind is ViolationKind.WILD_DEREFERENCE
        assert table.check(WILD_PID, 0x1000).kind is ViolationKind.WILD_DEREFERENCE

    def test_write_to_readonly(self, table):
        pid, _ = table.begin_generation(64)
        table.end_generation(pid, 0x1000)
        table.get(pid).perms &= ~Perm.WRITE
        assert table.check(pid, 0x1000, write=True).kind is ViolationKind.PERMISSION
        assert table.check(pid, 0x1000, write=False) is None


class TestFreeProtocol:
    def test_double_free_detected(self, table):
        pid = generate(table, 0x1000, 64)
        table.begin_free(pid)
        table.end_free(pid)
        violation = table.begin_free(pid)
        assert violation.kind is ViolationKind.DOUBLE_FREE

    def test_invalid_free_zero_pid(self, table):
        assert table.begin_free(0).kind is ViolationKind.INVALID_FREE

    def test_invalid_free_wild_pid(self, table):
        assert table.begin_free(WILD_PID).kind is ViolationKind.INVALID_FREE

    def test_freed_capability_stays_resident(self, table):
        pid = generate(table, 0x1000, 64)
        table.begin_free(pid)
        table.end_free(pid)
        assert pid in table
        assert table.stats.freed == 1


class TestAddressSearch:
    def test_find_by_address(self, table):
        pid = generate(table, 0x1000, 64)
        generate(table, 0x2000, 64)
        assert table.find_by_address(0x1020).pid == pid
        assert table.find_by_address(0x1800) is None

    def test_find_skips_freed(self, table):
        pid = generate(table, 0x1000, 64)
        table.begin_free(pid)
        table.end_free(pid)
        assert table.find_by_address(0x1020) is None

    def test_find_any_includes_freed(self, table):
        pid = generate(table, 0x1000, 64)
        table.begin_free(pid)
        table.end_free(pid)
        assert table.find_any_by_address(0x1020).pid == pid

    def test_find_any_prefers_live_reuse(self, table):
        old = generate(table, 0x1000, 64)
        table.begin_free(old)
        table.end_free(old)
        new = generate(table, 0x1000, 64)  # allocator reused the chunk
        assert table.find_any_by_address(0x1010).pid == new


class TestStorageAccounting:
    def test_shadow_bytes(self, table):
        for i in range(10):
            generate(table, 0x1000 + i * 0x100, 16)
        assert table.shadow_bytes == 10 * CAPABILITY_BYTES

    def test_register_global(self, table):
        pid = table.register_global(0x600000, 256)
        cap = table.get(pid)
        assert cap.valid and cap.base == 0x600000 and cap.bounds == 256
