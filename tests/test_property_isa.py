"""Property-based tests for the ISA layer: assembler, decoder, machine ALU."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Chex86Machine, Variant
from repro.isa import MASK64, Reg, assemble, to_s64, to_u64
from repro.isa.registers import compute_flags, Flag
from repro.microop import Decoder, UopKind
from repro.core.machine import _alu_compute, _branch_taken
from repro.microop.uops import AluOp

u64 = st.integers(min_value=0, max_value=MASK64)
small = st.integers(min_value=0, max_value=1 << 30)


class TestAluSemantics:
    @given(a=u64, b=u64)
    def test_add_matches_python_mod_2_64(self, a, b):
        result, carry, _ = _alu_compute(AluOp.ADD, [a, b])
        assert result == (a + b) & MASK64
        assert carry == (a + b > MASK64)

    @given(a=u64, b=u64)
    def test_sub_matches_python_mod_2_64(self, a, b):
        result, borrow, _ = _alu_compute(AluOp.SUB, [a, b])
        assert result == (a - b) & MASK64
        assert borrow == (a < b)

    @given(a=u64, b=u64)
    def test_bitwise_ops(self, a, b):
        assert _alu_compute(AluOp.AND, [a, b])[0] == a & b
        assert _alu_compute(AluOp.OR, [a, b])[0] == a | b
        assert _alu_compute(AluOp.XOR, [a, b])[0] == a ^ b

    @given(a=u64, b=st.integers(0, 63))
    def test_shifts(self, a, b):
        assert _alu_compute(AluOp.SHL, [a, b])[0] == (a << b) & MASK64
        assert _alu_compute(AluOp.SHR, [a, b])[0] == a >> b

    @given(a=u64)
    def test_neg_not_involutions(self, a):
        neg, _, _ = _alu_compute(AluOp.NEG, [a])
        assert _alu_compute(AluOp.NEG, [neg])[0] == a
        inverted, _, _ = _alu_compute(AluOp.NOT, [a])
        assert _alu_compute(AluOp.NOT, [inverted])[0] == a

    @given(a=u64, b=u64)
    def test_signed_comparison_via_flags(self, a, b):
        """cmp + jl must agree with Python's signed comparison."""
        result, carry, overflow = _alu_compute(AluOp.CMP, [a, b])
        flags = compute_flags(result, carry, overflow)
        assert _branch_taken("jl", flags) == (to_s64(a) < to_s64(b))
        assert _branch_taken("jge", flags) == (to_s64(a) >= to_s64(b))
        assert _branch_taken("je", flags) == (a == b)

    @given(a=u64, b=u64)
    def test_unsigned_comparison_via_flags(self, a, b):
        result, carry, overflow = _alu_compute(AluOp.CMP, [a, b])
        flags = compute_flags(result, carry, overflow)
        assert _branch_taken("jb", flags) == (a < b)
        assert _branch_taken("jae", flags) == (a >= b)


class TestMachineArithmetic:
    @settings(max_examples=25, deadline=None)
    @given(a=small, b=small)
    def test_computed_sum_matches_host(self, a, b):
        program = assemble(
            f"main:\n    mov rax, {a}\n    mov rbx, {b}\n"
            "    add rax, rbx\n    halt\n", name="sum")
        machine = Chex86Machine(program, variant=Variant.INSECURE)
        machine.run()
        assert machine.regs[Reg.RAX] == (a + b) & MASK64

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(0, 1 << 30), min_size=1, max_size=8))
    def test_memory_roundtrip_preserves_values(self, values):
        stores = "\n".join(
            f"    mov rbx, {1 << 20 | (i * 8)}\n    mov [rbx], {v}"
            for i, v in enumerate(values))
        loads = "\n".join(
            f"    mov rbx, {1 << 20 | (i * 8)}\n    mov rcx, [rbx]\n"
            f"    add rax, rcx"
            for i in range(len(values)))
        program = assemble(
            "main:\n    mov rax, 0\n" + stores + "\n" + loads
            + "\n    halt\n", name="roundtrip")
        machine = Chex86Machine(program, variant=Variant.INSECURE)
        machine.run()
        assert machine.regs[Reg.RAX] == sum(values) & MASK64


class TestDecoderProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from([
        "mov rax, rbx", "mov rax, 5", "mov rax, [rbx]", "mov [rbx], rax",
        "add rax, rbx", "add rax, 5", "add rax, [rbx]", "add [rbx], rax",
        "sub rcx, 9", "and rax, rbx", "xor rdx, rdx", "imul rax, rbx",
        "lea rax, [rbx + rcx*4 + 8]", "cmp rax, [rbx]", "push rax",
        "pop rbx", "inc rax", "dec [rbx]", "not rcx", "neg rax",
    ]))
    def test_every_form_decodes_with_bounded_expansion(self, text):
        program = assemble(f"main:\n    {text}\n    halt\n", name="form")
        decoder = Decoder()
        uops, _ = decoder.decode(program.fetch(program.entry),
                                 program.entry, 0, 1)
        assert 1 <= len(uops) <= 3
        # Memory uops carry a memory operand; others never do.
        for uop in uops:
            if uop.kind in (UopKind.LD, UopKind.ST):
                assert uop.mem is not None
