"""Tests for the interactive debugger REPL."""

import pytest

from repro.core import Variant
from repro.debugger import Debugger, debug_program
from repro.heap import heap_library_asm
from repro.isa import assemble

SOURCE = """
main:
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov [rbx + 72], 1
    halt
""" + heap_library_asm()


def run_session(commands, source=SOURCE,
                variant=Variant.UCODE_PREDICTION):
    output = []
    program = assemble(source, name="dbg")
    debugger = debug_program(program, variant=variant,
                             lines=commands, write=output.append)
    return debugger, "\n".join(output)


class TestReplCommands:
    def test_banner_and_initial_disasm(self):
        _, out = run_session(["q"])
        assert "chex86-dbg" in out
        assert "=> 0x400000" in out

    def test_step_advances(self):
        debugger, out = run_session(["step 2", "q"])
        assert debugger.machine.instructions == 2
        assert "stepped 2 instruction(s)" in out

    def test_empty_line_repeats_step(self):
        debugger, _ = run_session(["step 1", "", "", "q"])
        assert debugger.machine.instructions == 3

    def test_regs_shows_pid_tags(self):
        _, out = run_session(["step 5", "regs", "q"])
        assert "rax=" in out
        assert "[pid 1]" in out  # malloc's result carries its capability

    def test_continue_reports_violation(self):
        _, out = run_session(["continue", "q"])
        assert "1 violation(s)" in out
        assert "OUT-OF-BOUNDS" in out  # `why` auto-invoked

    def test_caps_lists_capabilities(self):
        _, out = run_session(["step 5", "caps", "q"])
        assert "cap[1]" in out

    def test_mem_dump(self):
        _, out = run_session(["step 5", "mem 0x10000000 2", "q"])
        assert "0x10000000:" in out
        assert "0x10000008:" in out

    def test_stats_and_aliases(self):
        _, out = run_session(["step 5", "stats", "aliases", "q"])
        assert "capability$" in out
        assert "spilled-pointer aliases" in out

    def test_unknown_command_is_survivable(self):
        debugger, out = run_session(["frobnicate", "step 1", "q"])
        assert "unknown command" in out
        assert debugger.machine.instructions >= 1

    def test_bad_argument_is_survivable(self):
        _, out = run_session(["mem zzz", "q"])
        assert "error:" in out

    def test_halt_is_announced(self):
        _, out = run_session(["continue", "q"],
                             source="main:\n    halt\n"
                                    + heap_library_asm())
        assert "(machine halted)" in out
