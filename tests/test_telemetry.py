"""Tests for the telemetry layer: metrics registry, event tracer,
machine integration, and the eval-engine per-cell sidecars."""

import json

import pytest

from repro.core import Chex86Machine, Variant
from repro.eval.common import BenchmarkRun, run_benchmark
from repro.eval.engine import CellSpec, EvalEngine
from repro.telemetry import (
    EVENT_KINDS,
    EventTracer,
    MetricsRegistry,
    write_snapshot,
)
from repro.telemetry.registry import (
    MERGE_LAST,
    _NULL_COUNTER,
    _NULL_HISTOGRAM,
)
from repro.workloads import build

from conftest import assemble_main


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.count")
        counter.inc()
        counter.inc(4)
        registry.gauge("a.gauge", lambda: 7)
        histogram = registry.histogram("a.hist", (1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(50.0)
        snap = registry.snapshot()
        assert snap["a.count"] == 5
        assert snap["a.gauge"] == 7
        assert snap["a.hist.count"] == 3
        assert snap["a.hist.sum"] == 55.5
        assert snap["a.hist.le_1"] == 1
        assert snap["a.hist.le_10"] == 2  # cumulative

    def test_counter_is_idempotent_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("dup", lambda: 0)
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("dup")

    def test_register_object_mapping_and_sequence(self):
        class Stats:
            hits = 3
            misses = 1

        registry = MetricsRegistry()
        registry.register_object("c", Stats(), ("hits",))
        registry.register_object("d", Stats(), {"bad": "misses"})
        snap = registry.snapshot()
        assert snap["c.hits"] == 3
        assert snap["d.bad"] == 1

    def test_ratio_default_on_zero_denominator(self):
        registry = MetricsRegistry()
        registry.gauge("num", lambda: 0)
        registry.gauge("den", lambda: 0)
        registry.ratio("rate", "num", "den")
        registry.ratio("accuracy", "num", "den", default=1.0)
        snap = registry.snapshot()
        assert snap["rate"] == 0.0
        assert snap["accuracy"] == 1.0

    def test_snapshot_delta_round_trip(self):
        values = {"n": 0, "d": 0, "level": 100}
        registry = MetricsRegistry()
        registry.gauge("n", lambda: values["n"])
        registry.gauge("d", lambda: values["d"])
        registry.gauge("level", lambda: values["level"], merge=MERGE_LAST)
        registry.ratio("rate", "n", "d")
        older = registry.snapshot()
        values.update(n=3, d=6, level=42)
        newer = registry.snapshot()
        delta = registry.delta(older, newer)
        assert delta["n"] == 3
        assert delta["d"] == 6
        assert delta["level"] == 42          # last-gauge: newer value
        assert delta["rate"] == 0.5          # recomputed over the interval
        # Deltas compose: older + delta reproduces the newer counters.
        assert older["n"] + delta["n"] == newer["n"]

    def test_merge_sums_counters_keeps_system_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("core.n", lambda: 0)
        registry.gauge("core.d", lambda: 0)
        registry.gauge("shared", lambda: 0, merge=MERGE_LAST)
        registry.ratio("rate", "core.n", "core.d")
        snaps = [
            {"core.n": 1, "core.d": 4, "shared": 99, "rate": 0.25},
            {"core.n": 3, "core.d": 4, "shared": 99, "rate": 0.75},
        ]
        merged = registry.merge(snaps)
        assert merged["core.n"] == 4
        assert merged["core.d"] == 8
        assert merged["shared"] == 99        # one copy, not 198
        assert merged["rate"] == 0.5         # recomputed, not summed


class TestDisabledRegistry:
    def test_null_instruments_are_shared_and_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        histogram = registry.histogram("h", (1.0,))
        assert counter is _NULL_COUNTER
        assert histogram is _NULL_HISTOGRAM
        counter.inc(10)
        histogram.observe(5.0)
        assert counter.value == 0
        assert histogram.count == 0

    def test_disabled_registrations_store_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.gauge("g", lambda: 1)
        registry.register_object("o", object(), ())
        registry.ratio("r", "a", "b")
        assert registry.snapshot() == {}
        # No state accumulated: the same name can be handed out forever.
        assert registry.counter("g") is registry.counter("g")


class TestWriteSnapshot:
    def test_document_shape(self, tmp_path):
        path = tmp_path / "m.json"
        write_snapshot(path, {"b": 2, "a": 1}, meta={"k": "v"})
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert doc["meta"] == {"k": "v"}
        assert list(doc["metrics"]) == ["a", "b"]  # sorted


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_emit_and_records_order(self):
        tracer = EventTracer(capacity=8)
        for i in range(3):
            tracer.emit(i, "capcheck", pc=0x400000 + i, pid=i)
        records = tracer.records()
        assert [e.ts for e in records] == [0, 1, 2]
        assert tracer.emitted == 3
        assert tracer.dropped == 0

    def test_ring_wraparound(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.emit(i, "capcheck")
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        # Oldest-first, and only the newest `capacity` survive.
        assert [e.ts for e in tracer.records()] == [6, 7, 8, 9]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_filtered_by_kind_and_pc(self):
        tracer = EventTracer()
        tracer.emit(1, "capcheck", pc=0x10)
        tracer.emit(2, "squash", pc=0x10, cause="branch", penalty=14)
        tracer.emit(3, "capcheck", pc=0x20)
        assert [e.ts for e in tracer.filtered(kinds=["capcheck"])] == [1, 3]
        assert [e.ts for e in tracer.filtered(pc=0x10)] == [1, 2]
        only = tracer.filtered(kinds=["capcheck"], pc=0x20)
        assert [e.ts for e in only] == [3]
        assert tracer.kind_counts() == {"capcheck": 2, "squash": 1}

    def test_jsonl_lines_parse(self):
        tracer = EventTracer()
        tracer.emit(5, "capgen", pc=0x30, pid=1, base=0x1000, size=64)
        (line,) = tracer.jsonl_lines()
        record = json.loads(line)
        assert record == {"ts": 5, "kind": "capgen", "pc": 0x30,
                          "pid": 1, "base": 0x1000, "size": 64}

    def test_chrome_trace_valid_json(self, tmp_path):
        tracer = EventTracer()
        tracer.emit(10, "capcheck", pc=0x40, pid=1, ok=True)
        tracer.emit(20, "squash", pc=0x44, cause="alias", penalty=14)
        path = tmp_path / "t.json"
        tracer.write_chrome(path, process_name="test")
        doc = json.loads(path.read_text())  # must round-trip as JSON
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        by_name = {e["name"]: e for e in events[1:]}
        assert by_name["capcheck"]["ph"] == "i"
        assert by_name["squash"]["ph"] == "X"
        assert by_name["squash"]["dur"] == 14
        assert all("ts" in e for e in events[1:])

    def test_write_jsonl_empty_buffer(self, tmp_path):
        tracer = EventTracer()
        path = tmp_path / "empty.jsonl"
        tracer.write_jsonl(path)
        assert path.read_text() == ""


class TestTracerExportEdgeCases:
    """Export edge cases: empty ring, exact-capacity boundary,
    interleaved kind/pc filtering, Chrome field validity."""

    def test_empty_ring_everywhere(self, tmp_path):
        tracer = EventTracer(capacity=4)
        assert tracer.records() == []
        assert tracer.filtered(kinds=["capcheck"], pc=0x10) == []
        assert tracer.kind_counts() == {}
        assert list(tracer.jsonl_lines()) == []
        doc = tracer.chrome_trace(process_name="empty")
        # Metadata only — and still a valid Chrome document.
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        from repro.telemetry.collate import validate_chrome_trace

        assert validate_chrome_trace(doc) == []
        target = tmp_path / "empty.json"
        tracer.write_chrome(target)
        assert json.loads(target.read_text())["traceEvents"] is not None

    def test_exact_capacity_boundary(self):
        tracer = EventTracer(capacity=4)
        for ts in range(4):                   # exactly capacity
            tracer.emit(ts, "capcheck", pc=ts)
        assert tracer.dropped == 0
        assert [e.ts for e in tracer.records()] == [0, 1, 2, 3]
        tracer.emit(4, "capcheck", pc=4)      # one past: oldest evicted
        assert tracer.dropped == 1
        assert [e.ts for e in tracer.records()] == [1, 2, 3, 4]
        # kind_counts/jsonl agree with the wrapped view, not emitted.
        assert tracer.kind_counts() == {"capcheck": 4}
        assert len(list(tracer.jsonl_lines())) == 4
        assert tracer.emitted == 5

    def test_interleaved_kinds_with_pc_filter(self):
        tracer = EventTracer(capacity=8)
        script = [(0, "capcheck", 0x10), (1, "squash", 0x10),
                  (2, "capcheck", 0x20), (3, "violation", 0x20),
                  (4, "squash", 0x20), (5, "capcheck", 0x10)]
        for ts, kind, pc in script:
            tracer.emit(ts, kind, pc=pc)
        both = tracer.filtered(kinds=["capcheck", "squash"])
        assert [e.ts for e in both] == [0, 1, 2, 4, 5]
        narrowed = tracer.filtered(kinds=["capcheck", "squash"], pc=0x10)
        assert [e.ts for e in narrowed] == [0, 1, 5]
        assert tracer.filtered(kinds=["violation"], pc=0x10) == []
        # Filtering after wraparound only sees surviving records: 6 new
        # capgens push out ts 0-3, leaving ts 5 as the only capcheck.
        for ts in range(6, 12):
            tracer.emit(ts, "capgen", pc=0x30)
        assert [e.ts for e in tracer.filtered(kinds=["capcheck"])] == [5]
        assert tracer.filtered(kinds=["violation"]) == []

    def test_chrome_export_field_validity(self, tmp_path):
        from repro.telemetry.collate import validate_chrome_trace

        tracer = EventTracer()
        tracer.emit(10, "capcheck", pc=0x400010, pid=3, ok=False)
        tracer.emit(25, "squash", pc=0x400020, cause="alias", penalty=14)
        tracer.emit(30, "violation", pc=0x400030, kind_detail="oob")
        doc = tracer.chrome_trace(process_name="fields")
        assert validate_chrome_trace(doc) == []
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], (int, float))
            assert event["ts"] >= 0
            assert event["args"]["pc"].startswith("0x")
        squash = [e for e in events if e["name"] == "squash"][0]
        assert squash["ph"] == "X" and squash["dur"] == 14
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e.get("s") == "t" for e in instants)

    def test_chrome_export_of_explicit_subset(self, tmp_path):
        tracer = EventTracer()
        tracer.emit(1, "capcheck", pc=0x10)
        tracer.emit(2, "squash", pc=0x20, cause="alias", penalty=3)
        subset = tracer.filtered(kinds=["squash"])
        target = tmp_path / "subset.json"
        tracer.write_chrome(target, events=subset)
        doc = json.loads(target.read_text())
        named = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["name"] for e in named] == ["squash"]


# -- machine integration ------------------------------------------------------


MALLOC_BODY = """
    mov rdi, 64
    call malloc
    mov [rax], 7
    mov rdi, rax
    call free
"""


def run_machine(body=MALLOC_BODY, tracer=None):
    machine = Chex86Machine(assemble_main(body),
                            variant=Variant.UCODE_PREDICTION,
                            halt_on_violation=False)
    if tracer is not None:
        machine.attach_tracer(tracer)
    machine.run(max_instructions=100_000)
    return machine


class TestMachineMetrics:
    def test_snapshot_matches_stats(self):
        machine = run_machine()
        snap = machine.metrics_snapshot()
        assert snap["machine.instructions"] == machine.instructions
        assert snap["machine.mcu.injected_uops"] == \
            machine.mcu.stats.injected_uops
        assert snap["cache.cap.miss_rate"] == \
            machine.capcache.stats.miss_rate
        assert snap["heap.total_allocs"] == 1
        assert snap["heap.total_frees"] == 1
        assert snap["shadow.capabilities"] == len(machine.captable)
        assert snap["timing.cycles"] == machine.timing.stats.cycles

    def test_stats_summary_is_registry_rendering(self):
        machine = run_machine()
        summary = machine.stats_summary()
        snap = machine.metrics_snapshot()
        assert f"{int(snap['machine.instructions']):,}" in summary
        assert "violations    0" in summary

    def test_tracer_captures_capability_lifecycle(self):
        tracer = EventTracer()
        machine = run_machine(tracer=tracer)
        counts = tracer.kind_counts()
        assert counts.get("capgen") == 1
        assert counts.get("capfree") == 1
        assert counts.get("capcheck", 0) >= 1
        assert counts.get("uop_inject", 0) >= 2
        assert set(counts) <= set(EVENT_KINDS)
        checks = tracer.filtered(kinds=["capcheck"])
        assert all(event.fields["ok"] for event in checks)
        assert machine.detach_tracer() is tracer
        assert machine._tracer is None

    def test_violation_event_emitted(self):
        tracer = EventTracer()
        run_machine("""
    mov rdi, 64
    call malloc
    mov [rax + 64], 7
""", tracer=tracer)
        (event,) = tracer.filtered(kinds=["violation"])
        assert event.fields["violation"] == "out-of-bounds"

    def test_quantum_deltas_sum_to_totals(self):
        machine = Chex86Machine(assemble_main(MALLOC_BODY),
                                variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.enable_quantum_metrics()
        while not machine.halted:
            machine.run_quantum(2)
        assert machine.quantum_deltas
        total = sum(d["machine.instructions"]
                    for d in machine.quantum_deltas)
        assert total == machine.instructions


# -- eval integration ---------------------------------------------------------


class TestEvalMetrics:
    def test_benchmark_run_carries_metrics(self):
        run = run_benchmark(build("lbm", 1), Variant.UCODE_PREDICTION,
                            max_instructions=50_000)
        assert run.metrics["machine.instructions"] == run.instructions
        assert run.metrics["machine.mcu.injected_uops"] == run.injected_uops
        assert run.metrics["cache.cap.misses"] == run.capcache_misses
        # Round-trips through the cache encoding.
        clone = BenchmarkRun.from_dict(run.to_dict())
        assert clone.metrics == run.metrics

    def test_multicore_merge_sums_cores_once_for_heap(self):
        run = run_benchmark(build("blackscholes", 1),
                            Variant.UCODE_PREDICTION,
                            max_instructions=50_000)
        assert run.threads > 1
        # Per-core counter: the merged value covers all cores.
        assert run.metrics["machine.instructions"] == run.instructions
        # System-shared gauge: kept once, not multiplied by core count.
        assert run.metrics["shadow.bytes"] == run.shadow_rss_bytes

    def test_engine_writes_per_cell_sidecar(self, tmp_path):
        engine = EvalEngine(jobs=1, use_cache=False)
        specs = [CellSpec(workload="lbm", defense="insecure",
                          max_instructions=50_000),
                 CellSpec(workload="lbm", defense="ucode-prediction",
                          max_instructions=50_000)]
        engine.run_cells(specs)
        path = tmp_path / "sidecar.json"
        engine.write_metrics(path, specs, "figX")
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert doc["artifact"] == "figX"
        assert doc["engine"]["engine.cells_computed"] == 2
        assert doc["engine"]["engine.cell_seconds.count"] == 2
        assert len(doc["cells"]) == 2
        for cell in doc["cells"]:
            assert cell["workload"] == "lbm"
            assert cell["metrics"]["machine.instructions"] > 0

    def test_pattern_cells_skipped_in_sidecar(self, tmp_path):
        engine = EvalEngine(jobs=1, use_cache=False)
        spec = CellSpec(workload="lbm", defense="ucode-prediction",
                        kind="patterns", max_instructions=50_000)
        engine.run_cells([spec])
        assert engine.cell_metrics([spec]) == []

    def test_cached_cells_counted_in_engine_telemetry(self, tmp_path):
        spec = CellSpec(workload="lbm", defense="insecure",
                        max_instructions=50_000)
        warm = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        warm.run_cells([spec])
        cold = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        cold.run_cells([spec])
        snap = cold.telemetry.snapshot()
        assert snap["engine.cells_cached"] == 1
        assert snap["engine.cells_computed"] == 0
