"""Differential fuzz sweep: slow path vs decoded-block fast path vs
superblock replay.

The front-end caches are pure performance transforms — they must never
change what executes.  The oracle: run the same seeded random mini-x86
program under all three execution modes —

* ``block_cache_enabled = False`` — every dynamic instruction recompiles
  (the slow path),
* ``block_cache_enabled = BLOCK_CACHE_BLOCKS`` — per-instruction decoded
  block replay,
* ``block_cache_enabled = True`` — superblock chains replayed with one
  dispatch per chain (the default),

and require identical architectural state, violation sets, and stats
snapshots.  The only permitted difference is the ``frontend.*`` counter
family (compile counts, superblock coverage): those *measure* the caches
and necessarily differ between modes.

The same generator doubles as a transparency oracle across all four
protected variants: a well-behaved program must flag no violations and
finish in exactly the insecure baseline's architectural state.

The generator itself lives in :mod:`repro.fuzz` (this fixed 50-seed
sweep is the tier-1 consumer; ``repro fuzz`` runs the same grammar with
open-ended seed ranges, violation profiles, and the full oracle set —
see ``docs/fuzzing.md``).
"""

import pytest

from repro.core import Chex86Machine, Variant
from repro.core.machine import BLOCK_CACHE_BLOCKS
from repro.fuzz import architectural_state, generate, generate_program
from repro.isa import Reg, assemble
from repro.telemetry import diff_snapshots

VARIANTS = (Variant.HW_ONLY, Variant.BINARY_TRANSLATION,
            Variant.UCODE_ALWAYS_ON, Variant.UCODE_PREDICTION)

#: The three execution modes under differential test.
MODES = (False, BLOCK_CACHE_BLOCKS, True)
MODE_IDS = ("slow", "blocks", "superblock")

BUDGET = 20_000
N_PROGRAMS = 50


def run_machine(program, variant, mode, *, trap: bool = False,
                trace_limit: int = 0, bbv_interval: int = 0):
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=trap)
    machine.block_cache_enabled = mode
    if trace_limit:
        machine.trace_limit = trace_limit
    if bbv_interval:
        machine.bbv_interval = bbv_interval
    result = machine.run(max_instructions=BUDGET)
    return machine, result


def strip_frontend(mapping: dict) -> dict:
    """Drop the ``frontend.*`` family: compile counts and superblock
    coverage measure the caches themselves and differ by mode."""
    return {key: value for key, value in mapping.items()
            if not key.startswith("frontend.")}


def comparable_metrics(machine: Chex86Machine) -> dict:
    return strip_frontend(machine.metrics_snapshot())


def assert_metrics_identical(machine: Chex86Machine,
                             reference: Chex86Machine, label: str) -> None:
    """Structured metric comparison: a failure names *which* metric
    moved and by how much, instead of dumping two whole dicts."""
    diff = diff_snapshots(comparable_metrics(reference),
                          comparable_metrics(machine))
    assert diff.identical, f"{label}: metrics diverged\n{diff.format_text()}"


def comparable_phase_counters(machine: Chex86Machine) -> dict:
    return strip_frontend(machine.phase_counters())


def assert_superblock_identity(machine: Chex86Machine) -> None:
    """Every retired instruction is either superblock-replayed or stepped:
    the two frontend meters partition the commit count exactly."""
    counters = machine.phase_counters()
    assert (counters["frontend.superblock_instructions"]
            + counters["frontend.fallback_instructions"]
            == machine.instructions)


class TestThreeWayDifferential:
    """Slow vs decoded-block vs superblock: bit-for-bit the same run."""

    @pytest.mark.parametrize("seed", range(N_PROGRAMS))
    def test_well_behaved_program(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        reference, reference_result = run_machine(program, variant, False)
        assert reference_result.halted
        reference_violations = [str(v)
                                for v in reference.violations.violations]
        assert reference_violations == []

        for mode, mode_id in zip(MODES[1:], MODE_IDS[1:]):
            machine, result = run_machine(program, variant, mode)
            label = f"seed {seed} ({variant.value}, {mode_id})"
            assert result.halted, f"{label}: did not halt"
            assert result.instructions == reference_result.instructions
            assert result.cycles == reference_result.cycles
            assert result.uops == reference_result.uops
            assert architectural_state(machine) \
                == architectural_state(reference), (
                    f"{label}: architectural state diverged")
            violations = [str(v) for v in machine.violations.violations]
            assert violations == reference_violations
            # Full stats snapshots: every registered metric outside the
            # frontend.* family agrees, and the human summary renders
            # identically.
            assert_metrics_identical(machine, reference, label)
            assert comparable_phase_counters(machine) \
                == comparable_phase_counters(reference)
            assert machine.stats_summary() == reference.stats_summary()
            if mode is True:
                assert_superblock_identity(machine)

        # The slow path compiled once per dynamic instruction.
        assert reference._blocks_compiled == reference.instructions

    @pytest.mark.parametrize("seed", range(8))
    def test_violating_program_flags_identically(self, seed):
        """The out-of-bounds profile's payload store must produce the
        *same* violation set in all three modes (trapping, so
        post-violation state is defined).  Under superblock replay the
        store usually traps mid-chain, exercising the partial-retire
        unwind path."""
        source = generate(seed, "out-of-bounds").source
        program = assemble(source, name=f"fuzz-oob{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        reference, reference_result = run_machine(program, variant, False,
                                                  trap=True)
        assert reference_result.flagged
        for mode, mode_id in zip(MODES[1:], MODE_IDS[1:]):
            machine, result = run_machine(program, variant, mode, trap=True)
            assert result.flagged, f"seed {seed} ({mode_id}): not flagged"
            assert [str(v) for v in machine.violations.violations] \
                == [str(v) for v in reference.violations.violations]
            assert result.instructions == reference_result.instructions
            assert result.cycles == reference_result.cycles
            assert architectural_state(machine) \
                == architectural_state(reference)
            assert_metrics_identical(machine, reference,
                                     f"seed {seed} ({mode_id})")


class TestObservationBoundaries:
    """Trace and BBV windows whose boundaries land *inside* hot chains:
    the budget-aware entry guard must fall back to per-instruction
    stepping exactly at the boundary, keeping the recorded artifacts
    bit-identical across modes."""

    @pytest.mark.parametrize("seed", (0, 7, 21, 33))
    def test_trace_limit_boundary(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        limit = 17  # odd on purpose: lands mid-superblock
        reference, _ = run_machine(program, variant, False,
                                   trace_limit=limit)
        expected = reference.format_trace()
        assert len(reference.execution_trace) == limit
        for mode, mode_id in zip(MODES[1:], MODE_IDS[1:]):
            machine, _ = run_machine(program, variant, mode,
                                     trace_limit=limit)
            assert machine.format_trace() == expected, (
                f"seed {seed} ({mode_id}): trace diverged")
            assert architectural_state(machine) \
                == architectural_state(reference)

    @pytest.mark.parametrize("seed", (3, 12, 26, 41))
    def test_bbv_interval_boundary(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        interval = 13  # prime: every superblock eventually straddles it
        reference, _ = run_machine(program, variant, False,
                                   bbv_interval=interval)
        for mode, mode_id in zip(MODES[1:], MODE_IDS[1:]):
            machine, _ = run_machine(program, variant, mode,
                                     bbv_interval=interval)
            assert machine.bbv_vectors == reference.bbv_vectors, (
                f"seed {seed} ({mode_id}): BBV vectors diverged")
            assert machine._bbv_current == reference._bbv_current

    @pytest.mark.parametrize("seed", (4, 18))
    def test_superblocks_cover_loops(self, seed):
        """Loopy programs actually exercise the superblock path (guards
        the other assertions against silently testing nothing)."""
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        machine, result = run_machine(program, VARIANTS[seed % 4], True)
        counters = machine.phase_counters()
        assert counters["frontend.superblocks_compiled"] > 0
        assert counters["frontend.superblock_instructions"] > 0
        assert_superblock_identity(machine)


class TestTransparencyOracle:
    """All four protected variants agree with the insecure baseline on
    well-behaved programs: same architectural state, zero violations."""

    @pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 5))
    def test_variants_match_insecure_baseline(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        reference, reference_result = run_machine(program, Variant.INSECURE,
                                                  True)
        assert reference_result.halted
        expected = architectural_state(reference)
        for variant in VARIANTS:
            machine, result = run_machine(program, variant, True, trap=True)
            assert result.halted, f"{variant.value}: did not finish"
            assert not result.flagged, (
                f"{variant.value}: false positive "
                f"{machine.violations.violations}")
            assert architectural_state(machine) == expected, (
                f"{variant.value}: architectural state diverged")
