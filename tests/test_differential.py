"""Differential fuzz sweep: decoded-block fast path vs forced slow path.

The decoded-block fast path (compile a pc's front-end product once,
replay it on every later visit) is a pure performance transform — it
must never change what executes.  The oracle: run the same seeded random
mini-x86 program twice, once with the block cache enabled (fast path)
and once with ``block_cache_enabled = False`` (every dynamic instruction
recompiles — the slow path), and require identical architectural state,
violation sets, and stats snapshots.  The only permitted difference is
``frontend.blocks_compiled`` (the compile *count* is what the fast path
exists to reduce).

The same generator doubles as a transparency oracle across all four
protected variants: a well-behaved program must flag no violations and
finish in exactly the insecure baseline's architectural state.
"""

import random

import pytest

from repro.core import Chex86Machine, Variant
from repro.heap import heap_library_asm
from repro.isa import Reg, assemble

#: Registers the generator uses for data (avoids rsp/rbp and ASan's r13-15).
DATA_REGS = ("rax", "rbx", "rcx", "rdx", "rsi", "r8", "r9", "r10")
PTR_REGS = ("r11", "r12")

VARIANTS = (Variant.HW_ONLY, Variant.BINARY_TRANSLATION,
            Variant.UCODE_ALWAYS_ON, Variant.UCODE_PREDICTION)

BUDGET = 20_000
N_PROGRAMS = 50


def generate_program(seed: int) -> str:
    """A seeded random program: arithmetic, in-bounds heap traffic,
    counted loops, stack spills, pointer copies — the Table I mix."""
    rng = random.Random(seed)
    lines = ["main:"]
    for reg in DATA_REGS:
        lines.append(f"    mov {reg}, {rng.randrange(1 << 16)}")
    size = rng.choice([32, 64, 128])
    for reg in PTR_REGS:
        lines.append(f"    mov rdi, {size}")
        lines.append("    call malloc")
        lines.append(f"    mov {reg}, rax")
    for i in range(rng.randint(5, 30)):
        choice = rng.randrange(7)
        a = rng.choice(DATA_REGS)
        b = rng.choice(DATA_REGS)
        if choice == 0:
            op = rng.choice(["add", "sub", "and", "or", "xor", "imul"])
            lines.append(f"    {op} {a}, {b}")
        elif choice == 1:
            lines.append(f"    mov {a}, {rng.randrange(1 << 20)}")
        elif choice == 2:  # in-bounds store
            ptr = rng.choice(PTR_REGS)
            offset = rng.randrange(size // 8) * 8
            lines.append(f"    mov [{ptr} + {offset}], {a}")
        elif choice == 3:  # in-bounds load
            ptr = rng.choice(PTR_REGS)
            offset = rng.randrange(size // 8) * 8
            lines.append(f"    mov {a}, [{ptr} + {offset}]")
        elif choice == 4:  # a short counted loop (exercises block replay)
            count = rng.randint(2, 6)
            body = rng.choice([r for r in DATA_REGS if r != a])
            lines.append(f"    mov {a}, 0")
            lines.append(f"loop{i}:")
            lines.append(f"    add {body}, 3")
            lines.append(f"    add {a}, 1")
            lines.append(f"    cmp {a}, {count}")
            lines.append(f"    jl loop{i}")
        elif choice == 5:  # stack spill/reload
            lines.append(f"    push {a}")
            lines.append(f"    pop {b}")
        else:  # pointer copy then in-bounds use (Table I traffic)
            ptr = rng.choice(PTR_REGS)
            lines.append(f"    mov rsi, {ptr}")
            lines.append("    mov rdx, [rsi]")
    lines.append(f"    mov rdi, {PTR_REGS[0]}")
    lines.append("    call free")
    lines.append(f"    mov {PTR_REGS[0]}, 0")
    lines.append("    halt")
    return "\n".join(lines) + "\n" + heap_library_asm()


def architectural_state(machine: Chex86Machine):
    regs = tuple(machine.regs[int(r)] for r in Reg if r is not Reg.RSP)
    heap_words = tuple(machine.memory.peek_word(0x1000_0000 + i * 8)
                       for i in range(64))
    return regs, heap_words


def run_machine(program, variant, *, slow: bool, trap: bool = False):
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=trap)
    if slow:
        machine.block_cache_enabled = False
    result = machine.run(max_instructions=BUDGET)
    return machine, result


def comparable_phase_counters(machine: Chex86Machine):
    counters = machine.phase_counters()
    # The compile count is the one number the fast path exists to change.
    counters.pop("frontend.blocks_compiled")
    return counters


class TestFastVsSlowPath:
    """Fast path vs forced slow path: bit-for-bit the same execution."""

    @pytest.mark.parametrize("seed", range(N_PROGRAMS))
    def test_well_behaved_program(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        fast, fast_result = run_machine(program, variant, slow=False)
        slow, slow_result = run_machine(program, variant, slow=True)

        assert fast_result.halted and slow_result.halted
        assert fast_result.instructions == slow_result.instructions
        assert fast_result.cycles == slow_result.cycles
        assert fast_result.uops == slow_result.uops
        assert architectural_state(fast) == architectural_state(slow), (
            f"seed {seed} ({variant.value}): architectural state diverged")
        # Violation sets: both empty for a well-behaved program, and
        # compared structurally so a false positive on either path fails.
        fast_violations = [str(v) for v in fast.violations.violations]
        slow_violations = [str(v) for v in slow.violations.violations]
        assert fast_violations == slow_violations == []
        # Full stats snapshots: every registered metric agrees.
        assert fast.metrics_snapshot() == slow.metrics_snapshot()
        assert comparable_phase_counters(fast) == \
            comparable_phase_counters(slow)
        # The fast path compiled strictly less than it executed; the
        # forced slow path compiled once per dynamic instruction.
        assert fast._blocks_compiled <= fast.instructions
        assert slow._blocks_compiled == slow.instructions

    @pytest.mark.parametrize("seed", range(8))
    def test_violating_program_flags_identically(self, seed):
        """An appended OOB store must produce the *same* violation set
        on both paths (trapping, so post-violation state is defined)."""
        source = generate_program(seed).replace(
            "    halt\n",
            f"    mov [r12 + {(seed % 4 + 1) * 128}], rax\n    halt\n", 1)
        program = assemble(source, name=f"fuzz-oob{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        fast, fast_result = run_machine(program, variant, slow=False,
                                        trap=True)
        slow, slow_result = run_machine(program, variant, slow=True,
                                        trap=True)
        assert fast_result.flagged and slow_result.flagged
        assert [str(v) for v in fast.violations.violations] \
            == [str(v) for v in slow.violations.violations]
        assert fast_result.instructions == slow_result.instructions
        assert architectural_state(fast) == architectural_state(slow)


class TestTransparencyOracle:
    """All four protected variants agree with the insecure baseline on
    well-behaved programs: same architectural state, zero violations."""

    @pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 5))
    def test_variants_match_insecure_baseline(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        reference, reference_result = run_machine(program, Variant.INSECURE,
                                                  slow=False)
        assert reference_result.halted
        expected = architectural_state(reference)
        for variant in VARIANTS:
            machine, result = run_machine(program, variant, slow=False,
                                          trap=True)
            assert result.halted, f"{variant.value}: did not finish"
            assert not result.flagged, (
                f"{variant.value}: false positive "
                f"{machine.violations.violations}")
            assert architectural_state(machine) == expected, (
                f"{variant.value}: architectural state diverged")
