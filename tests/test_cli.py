"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.heap import heap_library_asm


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
main:
    mov rdi, 64
    call malloc
    mov [rax], 7
    halt
""")
    return str(path)


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "bug.s"
    path.write_text("""
main:
    mov rdi, 64
    call malloc
    mov [rax + 64], 7
    halt
""")
    return str(path)


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (["list"], ["run", "x.s"], ["workload", "mcf"],
                     ["figure", "3"], ["table", "2"], ["security"]):
            assert parser.parse_args(argv).command == argv[0]

    def test_bad_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "mcf",
                                       "--variant", "nonsense"])

    def test_bad_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "not-a-benchmark"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "ucode-prediction" in out

    def test_run_clean_program(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out
        assert "violations" in out

    def test_run_buggy_program_nonzero_exit(self, buggy_file, capsys):
        assert main(["run", buggy_file, "--trap"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "out-of-bounds" in out

    def test_run_appends_heap_library_once(self, tmp_path, capsys):
        path = tmp_path / "own.s"
        path.write_text("main:\n    mov rax, 1\n    halt\n"
                        + heap_library_asm())
        assert main(["run", str(path)]) == 0

    def test_workload(self, capsys):
        assert main(["workload", "lbm"]) == 0
        out = capsys.readouterr().out
        assert "capability$" in out and "bandwidth" in out

    def test_table_3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_figure_1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_security_subsampled(self, capsys):
        assert main(["security", "--ripe-limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "How2Heap" in out


class TestTranslateFlag:
    def test_run_translate_detects_via_explicit_checks(self, buggy_file,
                                                       capsys):
        assert main(["run", buggy_file, "--translate", "--trap"]) == 1
        out = capsys.readouterr().out
        assert "binary translation:" in out
        assert "out-of-bounds" in out
