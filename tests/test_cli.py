"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.heap import heap_library_asm


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
main:
    mov rdi, 64
    call malloc
    mov [rax], 7
    halt
""")
    return str(path)


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "bug.s"
    path.write_text("""
main:
    mov rdi, 64
    call malloc
    mov [rax + 64], 7
    halt
""")
    return str(path)


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (["list"], ["run", "x.s"], ["workload", "mcf"],
                     ["figure", "3"], ["table", "2"], ["security"]):
            assert parser.parse_args(argv).command == argv[0]

    def test_bad_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "mcf",
                                       "--variant", "nonsense"])

    def test_bad_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "not-a-benchmark"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "ucode-prediction" in out

    def test_run_clean_program(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out
        assert "violations" in out

    def test_run_buggy_program_nonzero_exit(self, buggy_file, capsys):
        assert main(["run", buggy_file, "--trap"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "out-of-bounds" in out

    def test_run_appends_heap_library_once(self, tmp_path, capsys):
        path = tmp_path / "own.s"
        path.write_text("main:\n    mov rax, 1\n    halt\n"
                        + heap_library_asm())
        assert main(["run", str(path)]) == 0

    def test_workload(self, capsys):
        assert main(["workload", "lbm"]) == 0
        out = capsys.readouterr().out
        assert "capability$" in out and "bandwidth" in out

    def test_table_3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_figure_1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_security_subsampled(self, capsys):
        assert main(["security", "--ripe-limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "How2Heap" in out


class TestTelemetryFlags:
    def test_run_metrics_out(self, program_file, tmp_path, capsys):
        import json

        path = tmp_path / "m.json"
        assert main(["run", program_file, "--metrics-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert doc["metrics"]["machine.instructions"] > 0
        assert doc["meta"]["variant"] == "ucode-prediction"

    def test_run_trace_out_jsonl(self, program_file, tmp_path, capsys):
        import json

        path = tmp_path / "t.jsonl"
        assert main(["run", program_file, "--trace-out", str(path)]) == 0
        kinds = {json.loads(line)["kind"]
                 for line in path.read_text().splitlines()}
        assert "capgen" in kinds
        assert "trace: wrote" in capsys.readouterr().err

    def test_run_trace_out_chrome(self, program_file, tmp_path, capsys):
        import json

        path = tmp_path / "t.json"
        assert main(["run", program_file, "--trace-out", str(path),
                     "--trace-format", "chrome"]) == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["ph"] == "M"

    def test_trace_subcommand_filters(self, program_file, capsys):
        assert main(["trace", program_file, "--kind", "capcheck"]) == 0
        captured = capsys.readouterr()
        assert "capcheck" in captured.out
        assert "capgen" not in captured.out
        assert "emitted" in captured.err

    def test_trace_bad_capacity(self, program_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", program_file, "--capacity", "0"])
        assert exc.value.code == 2

    def test_workload_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "wm.json"
        assert main(["workload", "lbm", "--metrics-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["meta"]["workload"] == "lbm"
        assert doc["metrics"]["machine.instructions"] > 0

    def test_figure_metrics_out_requires_engine(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["figure", "1", "--metrics-out", "x.json"])
        assert exc.value.code == 2
        assert "engine-backed" in capsys.readouterr().err


class TestProfileOutDefault:
    def test_derived_from_program_stem(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "myprog.s"
        path.write_text("main:\n    mov rax, 1\n    halt\n")
        assert main(["run", str(path), "--profile",
                     "--no-heap-library"]) == 0
        assert (tmp_path / "myprog.prof").exists()

    def test_explicit_path_wins(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "myprog.s"
        path.write_text("main:\n    mov rax, 1\n    halt\n")
        assert main(["run", str(path), "--profile", "--no-heap-library",
                     "--profile-out", str(tmp_path / "custom.prof")]) == 0
        assert (tmp_path / "custom.prof").exists()
        assert not (tmp_path / "myprog.prof").exists()

    def test_phase_counters_sorted_with_total(self, tmp_path, monkeypatch,
                                              capsys):
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "p.s"
        path.write_text("main:\n    mov rax, 1\n    halt\n")
        assert main(["run", str(path), "--profile",
                     "--no-heap-library"]) == 0
        out = capsys.readouterr().out
        block = out.split("phase counters:\n", 1)[1]
        names = []
        for line in block.splitlines():
            if not line.startswith("  "):
                break
            names.append(line.split()[0])
        assert names[-1] == "total"
        counters = names[:-1]
        assert counters == sorted(counters)


class TestTranslateFlag:
    def test_run_translate_detects_via_explicit_checks(self, buggy_file,
                                                       capsys):
        assert main(["run", buggy_file, "--translate", "--trap"]) == 1
        out = capsys.readouterr().out
        assert "binary translation:" in out
        assert "out-of-bounds" in out


class TestErrorHandling:
    """User mistakes produce one line on stderr and exit status 2."""

    def assert_exits_2(self, argv, capsys, expect=None):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.strip()
        assert "Traceback" not in err
        if expect:
            assert expect in err
        return err

    def test_missing_assembly_file(self, capsys):
        self.assert_exits_2(["run", "/no/such/prog.s"], capsys,
                            expect="error:")

    def test_unknown_workload(self, capsys):
        self.assert_exits_2(["workload", "doom"], capsys)

    def test_unknown_figure(self, capsys):
        self.assert_exits_2(["figure", "42"], capsys)

    def test_unknown_table(self, capsys):
        self.assert_exits_2(["table", "42"], capsys)

    def test_jobs_must_be_positive(self, capsys):
        self.assert_exits_2(["figure", "6", "--jobs", "0"], capsys,
                            expect="--jobs")

    @pytest.mark.parametrize("argv", [
        # Commands that never construct an engine must still reject bad
        # engine flags instead of silently ignoring them.
        ["figure", "1", "--jobs", "0"],
        ["figure", "1", "--jobs", "-3"],
        ["table", "3", "--jobs", "0"],
        ["reproduce", "--jobs", "-1"],
    ])
    def test_jobs_validated_on_every_engine_command(self, argv, capsys):
        self.assert_exits_2(argv, capsys, expect="--jobs")

    def test_cell_timeout_must_be_positive(self, capsys):
        self.assert_exits_2(["figure", "6", "--cell-timeout", "0"], capsys,
                            expect="--cell-timeout")
        self.assert_exits_2(["figure", "1", "--cell-timeout", "-2.5"],
                            capsys, expect="--cell-timeout")

    def test_max_retries_must_be_non_negative(self, capsys):
        self.assert_exits_2(["figure", "6", "--max-retries", "-1"], capsys,
                            expect="--max-retries")

    def test_retry_backoff_must_be_non_negative(self, capsys):
        self.assert_exits_2(["table", "4", "--retry-backoff", "-1"], capsys,
                            expect="--retry-backoff")

    def test_resume_conflicts_with_no_cache(self, capsys):
        self.assert_exits_2(["figure", "6", "--resume", "--no-cache"],
                            capsys, expect="--resume")

    def test_engine_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "6", "--jobs", "2",
                                  "--no-cache", "--cache-dir", "/tmp/c"])
        assert args.jobs == 2 and args.no_cache
        assert args.cache_dir == "/tmp/c"
        args = parser.parse_args(["reproduce", "--jobs", "4"])
        assert args.jobs == 4

    def test_fault_tolerance_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["reproduce", "--cell-timeout", "120",
                                  "--max-retries", "5",
                                  "--retry-backoff", "0.5", "--resume"])
        assert args.cell_timeout == 120.0
        assert args.max_retries == 5
        assert args.retry_backoff == 0.5
        assert args.resume
        # Defaults: no timeout, 2 retries, 1s backoff, fresh sweep.
        args = parser.parse_args(["figure", "6"])
        assert args.cell_timeout is None
        assert args.max_retries == 2
        assert args.retry_backoff == 1.0
        assert not args.resume
