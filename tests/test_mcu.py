"""Unit tests for the microcode customization unit."""

import pytest

from repro.core import Variant, traits_of
from repro.core.mcu import MicrocodeCustomizationUnit
from repro.heap import heap_library_asm, registrations_for
from repro.isa import Mem, Reg, assemble
from repro.microop import Uop, UopKind


@pytest.fixture
def program():
    return assemble("main:\n  halt\n" + heap_library_asm(), name="lib")


def make_mcu(program, variant=Variant.UCODE_PREDICTION, **kwargs):
    return MicrocodeCustomizationUnit(
        registrations_for(program), traits_of(variant), **kwargs)


class TestHeapInterception:
    def test_malloc_entry_injects_capgen_begin(self, program):
        mcu = make_mcu(program)
        uops = mcu.intercept(program.labels["malloc"])
        assert [u.kind for u in uops] == [UopKind.CAPGEN_BEGIN]
        assert uops[0].srcs == (int(Reg.RDI),)
        assert uops[0].injected

    def test_malloc_exit_injects_capgen_end(self, program):
        mcu = make_mcu(program)
        uops = mcu.intercept(program.labels["malloc"] + 4)
        assert [u.kind for u in uops] == [UopKind.CAPGEN_END]
        assert uops[0].srcs == (int(Reg.RAX),)

    def test_calloc_signature_has_two_size_regs(self, program):
        mcu = make_mcu(program)
        uops = mcu.intercept(program.labels["calloc"])
        assert uops[0].srcs == (int(Reg.RDI), int(Reg.RSI))

    def test_free_entry_and_exit(self, program):
        mcu = make_mcu(program)
        entry = mcu.intercept(program.labels["free"])
        exit_ = mcu.intercept(program.labels["free"] + 4)
        assert [u.kind for u in entry] == [UopKind.CAPFREE_BEGIN]
        assert [u.kind for u in exit_] == [UopKind.CAPFREE_END]

    def test_realloc_injects_both_pairs(self, program):
        mcu = make_mcu(program)
        entry = mcu.intercept(program.labels["realloc"])
        assert [u.kind for u in entry] == [UopKind.CAPFREE_BEGIN,
                                           UopKind.CAPGEN_BEGIN]
        exit_ = mcu.intercept(program.labels["realloc"] + 4)
        assert [u.kind for u in exit_] == [UopKind.CAPFREE_END,
                                           UopKind.CAPGEN_END]

    def test_ordinary_address_not_intercepted(self, program):
        mcu = make_mcu(program)
        assert mcu.intercept(program.entry) == []

    def test_insecure_variant_never_intercepts(self, program):
        mcu = make_mcu(program, variant=Variant.INSECURE)
        assert mcu.intercept(program.labels["malloc"]) == []


class TestCheckInjection:
    def load_uop(self):
        return Uop(UopKind.LD, dst=0, mem=Mem(base=Reg.RBX))

    def test_tracked_policy_skips_untracked(self, program):
        mcu = make_mcu(program, variant=Variant.UCODE_PREDICTION)
        assert mcu.check_for(0x400000, self.load_uop(), base_pid=0) is None

    def test_tracked_policy_checks_tracked(self, program):
        mcu = make_mcu(program, variant=Variant.UCODE_PREDICTION)
        check = mcu.check_for(0x400000, self.load_uop(), base_pid=7)
        assert check.kind is UopKind.CAPCHECK
        assert check.pid == 7
        assert not check.check_write

    def test_store_check_marks_write(self, program):
        mcu = make_mcu(program, variant=Variant.UCODE_PREDICTION)
        store = Uop(UopKind.ST, srcs=(0,), mem=Mem(base=Reg.RBX))
        check = mcu.check_for(0x400000, store, base_pid=7)
        assert check.check_write

    def test_always_on_checks_untracked_too(self, program):
        mcu = make_mcu(program, variant=Variant.UCODE_ALWAYS_ON)
        assert mcu.check_for(0x400000, self.load_uop(), base_pid=0) is not None

    def test_lsu_policy_never_injects(self, program):
        mcu = make_mcu(program, variant=Variant.HW_ONLY)
        assert mcu.check_for(0x400000, self.load_uop(), base_pid=7) is None
        assert mcu.lsu_checks()

    def test_non_memory_uop_never_checked(self, program):
        mcu = make_mcu(program, variant=Variant.UCODE_ALWAYS_ON)
        assert mcu.check_for(0x400000, Uop(UopKind.NOP), base_pid=0) is None

    def test_injected_uops_not_rechecked(self, program):
        mcu = make_mcu(program, variant=Variant.UCODE_ALWAYS_ON)
        check = mcu.check_for(0x400000, self.load_uop(), base_pid=1)
        assert mcu.check_for(0x400000, check, base_pid=1) is None


class TestContextSensitivity:
    def test_outside_region_suppressed(self, program):
        mcu = make_mcu(program, critical_ranges=[(0x500000, 0x500100)])
        uop = Uop(UopKind.LD, dst=0, mem=Mem(base=Reg.RBX))
        assert mcu.check_for(0x400000, uop, base_pid=7) is None
        assert mcu.stats.capchecks_suppressed_context == 1

    def test_inside_region_checked(self, program):
        mcu = make_mcu(program, critical_ranges=[(0x400000, 0x400100)])
        uop = Uop(UopKind.LD, dst=0, mem=Mem(base=Reg.RBX))
        assert mcu.check_for(0x400050, uop, base_pid=7) is not None


class TestZeroIdiom:
    def test_demotion(self, program):
        mcu = make_mcu(program)
        check = mcu.check_for(0x400000,
                              Uop(UopKind.LD, dst=0, mem=Mem(base=Reg.RBX)),
                              base_pid=7)
        mcu.demote_to_zero_idiom(check)
        assert check.kind is UopKind.ZERO_IDIOM
        assert mcu.stats.zero_idioms == 1


class TestCriticalRangesFor:
    def make_program(self):
        from repro.isa import assemble
        from repro.heap import heap_library_asm
        return assemble("""
main:
    mov rdi, 8
    call malloc
    call parse_input
    halt
parse_input:
    mov rcx, 0
parse_loop:
    add rcx, 1
    cmp rcx, 4
    jne parse_loop
    ret
""" + heap_library_asm(), name="ranges")

    def test_function_extent_spans_internal_labels(self):
        from repro.core import critical_ranges_for
        program = self.make_program()
        (start, end), = critical_ranges_for(program, ["parse_input"])
        assert start == program.labels["parse_input"]
        # The internal parse_loop label must not split the function; the
        # extent runs to the next call target (malloc, the heap library).
        assert end > program.labels["parse_loop"]
        assert end <= program.labels["malloc"]

    def test_unknown_function_raises(self):
        from repro.core import critical_ranges_for
        program = self.make_program()
        with pytest.raises(KeyError):
            critical_ranges_for(program, ["no_such_fn"])

    def test_ranges_drive_surgical_checks(self):
        from repro.core import Chex86Machine, Variant, critical_ranges_for
        from repro.isa import assemble
        from repro.heap import heap_library_asm
        source = """
main:
    mov rdi, 64
    call malloc
    mov rbx, rax
    call touch
    mov [rbx + 8], 2     ; outside the critical region: unchecked
    halt
touch:
    mov [rbx], 1         ; inside the critical region: checked
    ret
""" + heap_library_asm()
        program = assemble(source, name="surgical")
        machine = Chex86Machine(
            program, variant=Variant.UCODE_PREDICTION,
            critical_ranges=critical_ranges_for(program, ["touch"]),
            halt_on_violation=False)
        machine.run()
        assert machine.mcu.stats.capchecks == 1
        assert machine.mcu.stats.capchecks_suppressed_context >= 1
