"""Tests for the MSR interface and the OS process loader."""

import pytest

from repro.core import Variant, ViolationKind
from repro.heap import HeapFnKind, heap_library_asm, registrations_for
from repro.isa import Reg, assemble
from repro.kernel import (
    MAX_REGISTRATIONS,
    MSR_CHEX86_MAX_ALLOC,
    MsrError,
    MsrFile,
    ProcessLoader,
)

from conftest import assemble_main


@pytest.fixture
def program():
    return assemble_main("""
    mov rdi, 64
    call malloc
    mov [rax + 64], 1
""")


class TestMsrFile:
    def test_raw_read_write(self):
        msr = MsrFile()
        msr.wrmsr(MSR_CHEX86_MAX_ALLOC, 1 << 20)
        assert msr.rdmsr(MSR_CHEX86_MAX_ALLOC) == 1 << 20

    def test_unimplemented_msr_rejected(self):
        msr = MsrFile()
        with pytest.raises(MsrError):
            msr.wrmsr(0xDEAD, 1)
        with pytest.raises(MsrError):
            msr.rdmsr(0xDEAD)

    def test_registration_roundtrip(self, program):
        msr = MsrFile()
        original = registrations_for(program)
        for registration in original:
            msr.register_function(registration)
        decoded = msr.registered_functions()
        assert len(decoded) == len(original)
        for a, b in zip(original, decoded):
            assert (a.name, a.kind, a.entry, a.exit) == \
                   (b.name, b.kind, b.entry, b.exit)
            assert a.size_regs == b.size_regs
            assert a.ptr_reg == b.ptr_reg

    def test_model_specific_registration_limit(self, program):
        msr = MsrFile()
        registration = registrations_for(program)[0]
        for _ in range(MAX_REGISTRATIONS):
            msr.register_function(registration)
        with pytest.raises(MsrError):
            msr.register_function(registration)

    def test_save_restore_roundtrip(self, program):
        msr = MsrFile()
        for registration in registrations_for(program):
            msr.register_function(registration)
        snapshot = msr.save()
        msr.clear()
        assert msr.registered_functions() == []
        msr.restore(snapshot)
        assert len(msr.registered_functions()) == 4

    def test_protection_enable_bit(self):
        msr = MsrFile()
        assert not msr.protection_enabled
        msr.enable_protection()
        assert msr.protection_enabled


class TestProcessLoader:
    def test_machine_built_from_msrs_detects_violations(self, program):
        loader = ProcessLoader()
        process = loader.create_process(program,
                                        variant=Variant.UCODE_PREDICTION)
        machine = loader.attach_machine(process, halt_on_violation=False)
        result = machine.run()
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_disabled_protection_bit_disables_checks(self, program):
        loader = ProcessLoader()
        process = loader.create_process(program, variant=Variant.INSECURE)
        machine = loader.attach_machine(process, halt_on_violation=False)
        result = machine.run()
        assert not result.flagged

    def test_max_alloc_msr_reaches_capgen(self):
        huge_alloc = assemble_main("""
    mov rdi, 0x200000
    call malloc
""")
        loader = ProcessLoader()
        process = loader.create_process(huge_alloc,
                                        max_alloc_bytes=1 << 20)
        machine = loader.attach_machine(process, halt_on_violation=False)
        result = machine.run()
        assert result.violations.count(ViolationKind.HEAP_SPRAY) == 1

    def test_context_switch_isolates_processes(self, program):
        loader = ProcessLoader()
        a = loader.create_process(program, max_alloc_bytes=1 << 16)
        tiny = assemble_main("    nop")
        b = loader.create_process(tiny, max_alloc_bytes=1 << 24)
        loader.context_switch(a.pid)
        assert loader.msr.max_alloc_bytes == 1 << 16
        loader.context_switch(b.pid)
        assert loader.msr.max_alloc_bytes == 1 << 24
        loader.context_switch(a.pid)
        assert loader.msr.max_alloc_bytes == 1 << 16
        assert len(loader.msr.registered_functions()) == 4

    def test_unregistered_function_not_intercepted(self):
        """A program whose allocator the kernel did NOT register gets no
        capabilities — the paper's 'memory allocated using an unregistered
        heap management function' case."""
        text = """
main:
    mov rdi, 64
    call my_alloc
    mov [rax + 64], 1
    halt
my_alloc:
    hostop heap_malloc
    ret
"""
        program = assemble(text, name="custom-alloc")
        loader = ProcessLoader()
        process = loader.create_process(program,
                                        variant=Variant.UCODE_PREDICTION)
        machine = loader.attach_machine(process, halt_on_violation=False)
        result = machine.run()
        # No registration -> no capGen -> the OOB goes unflagged.
        assert loader.msr.registered_functions() == []
        assert not result.flagged

    def test_static_analysis_objects_get_capabilities(self):
        """'Our approach is flexible enough to be configured with metadata
        derived from more sophisticated static analysis' (Section IV-C)."""
        tiny = assemble_main("    nop")
        loader = ProcessLoader()
        process = loader.create_process(tiny)
        machine = loader.attach_machine(
            process, static_analysis_objects=[(0x700000, 128)],
            halt_on_violation=False)
        pid = machine.global_pid("static_analysis_0")
        assert pid > 0
        capability = machine.captable.get(pid)
        assert capability.base == 0x700000 and capability.bounds == 128

    def test_create_process_does_not_clobber_running_msrs(self):
        """Regression: creating process B while A is attached must not
        corrupt A's MSR state at the next context switch."""
        loader = ProcessLoader()
        a = loader.create_process(assemble_main("    nop"),
                                  max_alloc_bytes=1 << 30)
        loader.attach_machine(a, halt_on_violation=False)  # A is running
        b = loader.create_process(assemble_main("    halt"),
                                  max_alloc_bytes=1 << 20)
        loader.context_switch(b.pid)
        loader.context_switch(a.pid)
        assert loader.msr.max_alloc_bytes == 1 << 30
