"""Property-based tests (hypothesis) for the capability system."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Perm, ShadowCapabilityTable, ViolationKind

addresses = st.integers(min_value=0x1000, max_value=1 << 40)
sizes = st.integers(min_value=1, max_value=1 << 20)
offsets = st.integers(min_value=-(1 << 12), max_value=1 << 21)


class TestBoundsInvariant:
    @given(base=addresses, size=sizes, offset=offsets)
    def test_check_matches_interval_arithmetic(self, base, size, offset):
        """check() flags exactly the accesses outside [base, base+size)."""
        table = ShadowCapabilityTable()
        pid, _ = table.begin_generation(size)
        table.end_generation(pid, base)
        address = base + offset
        violation = table.check(pid, address, 8)
        inside = 0 <= offset and offset + 8 <= size
        assert (violation is None) == inside
        if violation is not None:
            assert violation.kind is ViolationKind.OUT_OF_BOUNDS

    @given(base=addresses, size=sizes)
    def test_boundaries_exact(self, base, size):
        table = ShadowCapabilityTable()
        pid, _ = table.begin_generation(size)
        table.end_generation(pid, base)
        if size >= 8:
            assert table.check(pid, base, 8) is None
            assert table.check(pid, base + size - 8, 8) is None
        assert table.check(pid, base + size, 8) is not None
        assert table.check(pid, base - 8, 8) is not None


class TestLifecycleInvariants:
    @given(st.lists(st.tuples(addresses, sizes), min_size=1, max_size=40))
    def test_pids_unique_and_total_preserved(self, allocations):
        table = ShadowCapabilityTable()
        pids = []
        for base, size in allocations:
            pid, _ = table.begin_generation(size)
            table.end_generation(pid, base)
            pids.append(pid)
        assert len(set(pids)) == len(pids)
        assert len(table) == len(allocations)

    @given(base=addresses, size=sizes)
    def test_free_is_permanent_until_regenerated(self, base, size):
        table = ShadowCapabilityTable()
        pid, _ = table.begin_generation(size)
        table.end_generation(pid, base)
        assert table.begin_free(pid) is None
        table.end_free(pid)
        # Every later access must fail as use-after-free, forever.
        assert table.check(pid, base, 8).kind is ViolationKind.USE_AFTER_FREE
        assert table.begin_free(pid).kind is ViolationKind.DOUBLE_FREE

    @given(st.lists(st.tuples(addresses, sizes, st.booleans()),
                    min_size=1, max_size=30))
    def test_find_by_address_returns_only_valid_covering(self, allocs):
        """Whatever find_by_address returns must actually cover the probe
        address and be valid."""
        table = ShadowCapabilityTable()
        for base, size, freed in allocs:
            pid, _ = table.begin_generation(size)
            table.end_generation(pid, base)
            if freed:
                table.begin_free(pid)
                table.end_free(pid)
        for base, size, _ in allocs:
            found = table.find_any_by_address(base)
            assert found is not None
            assert found.contains(base)
            valid_found = table.find_by_address(base)
            if valid_found is not None:
                assert valid_found.valid
                assert valid_found.contains(base)


class TestShadowAccounting:
    @given(st.integers(min_value=0, max_value=100))
    def test_storage_is_linear_in_capabilities(self, count):
        table = ShadowCapabilityTable()
        for i in range(count):
            pid, _ = table.begin_generation(16)
            table.end_generation(pid, 0x1000 + i * 64)
        assert table.shadow_bytes == 16 * count
