"""Unit tests for the scoreboard timing model."""

import pytest

from repro.memory import SetAssocCache
from repro.microop.uops import NUM_UREGS
from repro.pipeline.config import DEFAULT_CONFIG
from repro.pipeline.timing import FuType, TimingModel


def make_timing(config=DEFAULT_CONFIG):
    l2 = SetAssocCache(config.l2_bytes // config.line_bytes, config.l2_ways,
                       config.line_bytes.bit_length() - 1, name="l2")
    return TimingModel(config, l2)


class TestScheduling:
    def test_dependency_chain_serializes(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        first = timing.schedule((), 0, latency=5)
        second = timing.schedule((0,), 1, latency=1)
        assert second >= first + 1

    def test_independent_ops_overlap(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        a = timing.schedule((), 0, latency=10)
        b = timing.schedule((), 1, latency=10)
        assert abs(a - b) < 10  # not serialized behind each other

    def test_flags_dependency(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        producer = timing.schedule((), 0, latency=7, writes_flags=True)
        consumer = timing.schedule((), None, latency=1, reads_flags=True)
        assert consumer >= producer + 1

    def test_unpipelined_unit_backs_up(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        first = timing.schedule((), None, latency=3, fu=FuType.MULT,
                                occupancy=3)
        second = timing.schedule((), None, latency=3, fu=FuType.MULT,
                                 occupancy=3)
        assert second >= first + 3

    def test_issue_width_limits_per_cycle(self):
        config = DEFAULT_CONFIG.with_(issue_width=2)
        timing = make_timing(config)
        timing.begin_macro(0x400000)
        done = [timing.schedule((), None, latency=1) for _ in range(8)]
        # 8 single-cycle uops through a 2-wide issue: at least 4 cycles span.
        assert max(done) - min(done) >= 3

    def test_finish_reports_cycles(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        timing.schedule((), 0, latency=4)
        stats = timing.finish()
        assert stats.cycles > 0
        assert stats.uops == 1


class TestMemoryHierarchy:
    def test_l1_hit_after_miss(self):
        timing = make_timing()
        cold = timing.mem_access(0x10000, is_store=False)
        warm = timing.mem_access(0x10000, is_store=False)
        assert cold > warm
        assert warm == DEFAULT_CONFIG.l1_latency
        assert timing.stats.l1d_misses == 1

    def test_l2_hit_cheaper_than_dram(self):
        timing = make_timing()
        dram = timing.mem_access(0x10000, is_store=False)
        # Evict from L1 by filling its set, keeping L2 resident.
        for i in range(1, 20):
            timing.mem_access(0x10000 + i * DEFAULT_CONFIG.l1d_bytes, False)
        l2_hit = timing.mem_access(0x10000, is_store=False)
        assert DEFAULT_CONFIG.l1_latency < l2_hit < dram

    def test_dram_traffic_counted(self):
        timing = make_timing()
        timing.mem_access(0x20000, is_store=False)
        assert timing.stats.dram_bytes == DEFAULT_CONFIG.line_bytes

    def test_shadow_traffic_separate(self):
        timing = make_timing()
        timing.shadow_access(10, 16)
        assert timing.stats.shadow_dram_bytes == 16
        assert timing.stats.dram_bytes == 0

    def test_bandwidth_metric(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        timing.mem_access(0x20000, is_store=False)
        timing.schedule((), 0, latency=1)
        stats = timing.finish()
        assert stats.bandwidth_mb_per_s(3.4) > 0


class TestFrontEnd:
    def test_fetch_groups_advance(self):
        timing = make_timing()
        for i in range(12):
            timing.begin_macro(0x400000 + 4 * i)
        # 12 macro-ops / 4-wide fetch = at least 3 groups.
        assert timing.stats.fetch_groups >= 3

    def test_msrom_consumes_group(self):
        plain = make_timing()
        for i in range(8):
            plain.begin_macro(0x400000 + 4 * i)
        msrom = make_timing()
        for i in range(8):
            msrom.begin_macro(0x400000 + 4 * i, msrom=True)
        assert msrom.stats.fetch_groups > plain.stats.fetch_groups

    def test_bt_fetch_slots_tax(self):
        narrow = make_timing()
        for i in range(16):
            narrow.begin_macro(0x400000 + 4 * i, fetch_slots=2)
        wide = make_timing()
        for i in range(16):
            wide.begin_macro(0x400000 + 4 * i, fetch_slots=1)
        assert narrow.stats.fetch_groups > wide.stats.fetch_groups

    def test_redirect_accounts_squash(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        done = timing.schedule((), None, latency=1)
        timing.redirect(done, penalty=15)
        assert timing.stats.squash_cycles >= 15
        assert timing.stats.branch_squash_cycles >= 15

    def test_alias_redirect_tagged(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        done = timing.schedule((), None, latency=1)
        timing.redirect(done, penalty=15, alias=True)
        assert timing.stats.alias_squash_cycles >= 15


class TestRoutineCall:
    def test_routine_produces_result_later(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        done = timing.routine_call(90, srcs=(), dst=0)
        dependent = timing.schedule((0,), 1, latency=1)
        assert dependent > done - 1
        assert timing.stats.hostop_cycles == 45

    def test_routine_does_not_drain_pipe(self):
        timing = make_timing()
        timing.begin_macro(0x400000)
        slow = timing.schedule((), 2, latency=200)
        timing.routine_call(90, srcs=(), dst=0)
        independent = timing.schedule((), 3, latency=1)
        # Work not depending on the routine finishes before the slow chain.
        assert independent < slow

    def test_occupy_reserves_unit(self):
        timing = make_timing()
        start1 = timing.occupy(FuType.WALKER, 10, 30)
        start2 = timing.occupy(FuType.WALKER, 10, 30)
        start3 = timing.occupy(FuType.WALKER, 10, 30)
        # Two walkers: the third walk waits for a unit.
        assert start1 == 10 and start2 == 10
        assert start3 >= 40
