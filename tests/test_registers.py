"""Unit tests for the architectural register definitions."""

import pytest

from repro.isa.registers import (
    ARG_REGS,
    Flag,
    MASK64,
    NUM_REGS,
    RET_REG,
    Reg,
    compute_flags,
    parse_reg,
    to_s64,
    to_u64,
)


class TestReg:
    def test_sixteen_gprs(self):
        assert NUM_REGS == 16

    def test_indices_are_dense(self):
        assert sorted(int(r) for r in Reg) == list(range(16))

    def test_calling_convention(self):
        assert ARG_REGS[0] is Reg.RDI
        assert ARG_REGS[1] is Reg.RSI
        assert RET_REG is Reg.RAX


class TestParseReg:
    def test_plain_name(self):
        assert parse_reg("rax") is Reg.RAX

    def test_percent_prefix(self):
        assert parse_reg("%rbx") is Reg.RBX

    def test_case_insensitive(self):
        assert parse_reg("RsP") is Reg.RSP

    def test_numbered_register(self):
        assert parse_reg("r15") is Reg.R15

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            parse_reg("eax")  # 32-bit names are not modelled


class TestArithmeticHelpers:
    def test_to_u64_truncates(self):
        assert to_u64(1 << 64) == 0
        assert to_u64(-1) == MASK64

    def test_to_s64_sign_extends(self):
        assert to_s64(MASK64) == -1
        assert to_s64(1 << 63) == -(1 << 63)

    def test_to_s64_positive_passthrough(self):
        assert to_s64(42) == 42


class TestComputeFlags:
    def test_zero_sets_zf(self):
        assert Flag.ZF in compute_flags(0)

    def test_negative_sets_sf(self):
        assert Flag.SF in compute_flags(1 << 63)

    def test_positive_sets_neither(self):
        flags = compute_flags(5)
        assert Flag.ZF not in flags
        assert Flag.SF not in flags

    def test_carry_and_overflow_passthrough(self):
        flags = compute_flags(1, carry=True, overflow=True)
        assert Flag.CF in flags
        assert Flag.OF in flags
