"""Unit tests for micro-op and operand primitives."""

import pytest

from repro.isa import Imm, LabelRef, Mem, Reg
from repro.microop import (
    CAPABILITY_KINDS,
    NUM_UREGS,
    T0,
    T1,
    AluOp,
    Uop,
    UopKind,
    ureg_name,
)


class TestMemOperand:
    def test_scale_validation(self):
        for scale in (1, 2, 4, 8):
            Mem(base=Reg.RAX, index=Reg.RBX, scale=scale)
        with pytest.raises(ValueError):
            Mem(base=Reg.RAX, index=Reg.RBX, scale=3)

    def test_absolute_detection(self):
        assert Mem(disp=0x600000).is_absolute
        assert not Mem(base=Reg.RAX).is_absolute
        assert not Mem(index=Reg.RAX, scale=8).is_absolute

    def test_frozen(self):
        mem = Mem(base=Reg.RAX)
        with pytest.raises(Exception):
            mem.disp = 5

    def test_operand_reprs(self):
        assert str(Imm(5)) == "$5"
        assert "0x" in str(Imm(1000))
        assert str(LabelRef("target")) == "target"
        assert "%rax" in str(Mem(base=Reg.RAX, disp=8))


class TestUop:
    def test_temp_registers_beyond_architectural(self):
        assert T0 == 16 and T1 == 17
        assert NUM_UREGS == 18
        assert ureg_name(T0) == "%t0"
        assert ureg_name(0) == "%rax"

    def test_reg_reads_includes_memory_registers(self):
        uop = Uop(UopKind.ST, srcs=(3,),
                  mem=Mem(base=Reg.RBX, index=Reg.RCX, scale=8))
        reads = uop.reg_reads()
        assert 3 in reads
        assert int(Reg.RBX) in reads and int(Reg.RCX) in reads

    def test_reg_reads_without_memory(self):
        uop = Uop(UopKind.ALU, alu=AluOp.ADD, dst=0, srcs=(0, 1))
        assert uop.reg_reads() == (0, 1)

    def test_kind_classification(self):
        assert Uop(UopKind.LD, dst=0, mem=Mem(base=Reg.RAX)).is_mem
        assert Uop(UopKind.ST, srcs=(0,), mem=Mem(base=Reg.RAX)).is_mem
        assert not Uop(UopKind.ALU, alu=AluOp.ADD, dst=0).is_mem
        assert Uop(UopKind.BR, target=4).is_branch
        assert Uop(UopKind.JMP_IND, srcs=(0,)).is_branch
        assert Uop(UopKind.CAPCHECK).is_capability
        assert not Uop(UopKind.LD, dst=0, mem=Mem(base=Reg.RAX)).is_capability

    def test_capability_kind_set(self):
        assert UopKind.CAPGEN_BEGIN in CAPABILITY_KINDS
        assert UopKind.CAPGEN_END in CAPABILITY_KINDS
        assert UopKind.CAPCHECK in CAPABILITY_KINDS
        assert UopKind.CAPFREE_BEGIN in CAPABILITY_KINDS
        assert UopKind.CAPFREE_END in CAPABILITY_KINDS
        assert UopKind.ZERO_IDIOM not in CAPABILITY_KINDS
        assert len(CAPABILITY_KINDS) == 5

    def test_str_renders_fields(self):
        uop = Uop(UopKind.ALU, alu=AluOp.ADD, dst=0, srcs=(0, 1))
        text = str(uop)
        assert "alu.add" in text and "%rax" in text and "%rbx" in text
        check = Uop(UopKind.CAPCHECK, pid=7, mem=Mem(base=Reg.RAX))
        assert "pid=7" in str(check)
