"""Unit tests for the TLB and its CHEx86 alias-hosting bit."""

import pytest

from repro.memory import PAGE_SIZE, Tlb


class TestTranslation:
    def test_miss_then_hit(self):
        tlb = Tlb()
        assert tlb.access(0x1000) is False
        assert tlb.access(0x1008) is True  # same page
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_distinct_pages_miss(self):
        tlb = Tlb()
        tlb.access(0x1000)
        assert tlb.access(0x1000 + PAGE_SIZE) is False

    def test_capacity_eviction(self):
        tlb = Tlb(entries=4, ways=4)
        for i in range(5):
            tlb.access(i * PAGE_SIZE)
        assert tlb.access(0) is False  # evicted


class TestAliasHostingBit:
    def test_bit_clear_filters_walks(self):
        tlb = Tlb()
        tlb.access(0x1000)
        assert tlb.page_hosts_aliases(0x1008) is False
        assert tlb.stats.alias_walks_filtered == 1

    def test_bit_set_after_spill(self):
        tlb = Tlb()
        tlb.mark_alias_hosting(0x1000)
        assert tlb.page_hosts_aliases(0x1ff8) is True
        assert tlb.stats.alias_walks_filtered == 0

    def test_bit_page_granular(self):
        tlb = Tlb()
        tlb.mark_alias_hosting(0x1000)
        assert tlb.page_hosts_aliases(0x1000 + PAGE_SIZE) is False

    def test_refill_picks_up_page_table_bit(self):
        tlb = Tlb(entries=1, ways=1)
        tlb.mark_alias_hosting(0x1000)
        tlb.access(0x5000)  # evicts the 0x1000 entry
        tlb.access(0x1000)  # refill reads the page-table bit
        assert tlb.page_hosts_aliases(0x1000) is True

    def test_shared_hosting_set(self):
        """Multicore: the page-table side of the bit is shared state."""
        shared = set()
        tlb_a = Tlb(hosting=shared)
        tlb_b = Tlb(hosting=shared)
        tlb_a.mark_alias_hosting(0x2000)
        assert tlb_b.page_hosts_aliases(0x2000) is True

    def test_hosting_pages_count(self):
        tlb = Tlb()
        tlb.mark_alias_hosting(0x1000)
        tlb.mark_alias_hosting(0x1008)  # same page
        tlb.mark_alias_hosting(0x9000)
        assert tlb.hosting_pages == 2
