"""Integration tests: timing behaviour of the machine across variants."""

import pytest

from repro.core import Chex86Machine, Variant
from repro.isa import assemble
from repro.pipeline.config import DEFAULT_CONFIG

from conftest import assemble_main

POINTER_LOOP = """
    mov rdi, 512
    call malloc
    mov rbx, rax
    mov rcx, 0
work:
    mov rdx, [rbx + rcx*8]
    add rdx, 1
    mov [rbx + rcx*8], rdx
    add rcx, 1
    cmp rcx, 64
    jne work
"""

COMPUTE_LOOP = """
    mov rax, 1
    mov rcx, 0
work:
    imul rax, 3
    add rax, 7
    shr rax, 1
    add rcx, 1
    cmp rcx, 64
    jne work
"""


def cycles_for(body, variant, **kwargs):
    program = assemble_main(body)
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=False, **kwargs)
    return machine.run().cycles


class TestVariantCostOrdering:
    def test_protection_never_speeds_up_pointer_code(self):
        baseline = cycles_for(POINTER_LOOP, Variant.INSECURE)
        for variant in (Variant.HW_ONLY, Variant.UCODE_ALWAYS_ON,
                        Variant.UCODE_PREDICTION):
            assert cycles_for(POINTER_LOOP, variant) >= baseline

    def test_compute_code_nearly_free(self):
        """Code with no heap pointer activity pays almost nothing under
        prediction-driven CHEx86 (the context-sensitivity payoff)."""
        baseline = cycles_for(COMPUTE_LOOP, Variant.INSECURE)
        protected = cycles_for(COMPUTE_LOOP, Variant.UCODE_PREDICTION)
        assert protected <= baseline * 1.05

    def test_always_on_checks_more_than_prediction(self):
        mixed = POINTER_LOOP + COMPUTE_LOOP.replace("work", "work2")
        program = assemble_main(mixed)
        always = Chex86Machine(program, variant=Variant.UCODE_ALWAYS_ON,
                               halt_on_violation=False)
        always.run()
        prediction = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                   halt_on_violation=False)
        prediction.run()
        assert always.mcu.stats.capchecks > prediction.mcu.stats.capchecks

    def test_uop_expansion_ordering(self):
        program = assemble_main(POINTER_LOOP)
        results = {}
        for variant in (Variant.INSECURE, Variant.HW_ONLY,
                        Variant.UCODE_ALWAYS_ON, Variant.UCODE_PREDICTION):
            machine = Chex86Machine(program, variant=variant,
                                    halt_on_violation=False)
            results[variant] = machine.run().uops
        assert results[Variant.INSECURE] <= results[Variant.HW_ONLY]
        assert results[Variant.HW_ONLY] <= results[Variant.UCODE_PREDICTION]
        assert (results[Variant.UCODE_PREDICTION]
                <= results[Variant.UCODE_ALWAYS_ON])


class TestStructureSizeEffects:
    def test_tiny_capability_cache_misses_more(self):
        body = """
    mov r12, [pool.addr]
    mov rcx, 0
alloc:
    mov rdi, 32
    call malloc
    mov [r12 + rcx*8], rax
    add rcx, 1
    cmp rcx, 32
    jne alloc
    mov r8, 0
touch:
    mov rcx, 0
inner:
    mov rbx, [r12 + rcx*8]
    mov rdx, [rbx]
    add rcx, 1
    cmp rcx, 32
    jne inner
    add r8, 1
    cmp r8, 4
    jne touch
"""
        program = assemble_main(body, globals_asm=".global pool, 256\n")
        big = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                            halt_on_violation=False,
                            config=DEFAULT_CONFIG.with_(capcache_entries=64))
        big.run()
        small = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                              halt_on_violation=False,
                              config=DEFAULT_CONFIG.with_(capcache_entries=8))
        small.run()
        assert small.capcache.stats.miss_rate > big.capcache.stats.miss_rate

    def test_branch_mispredicts_cost_cycles(self):
        """A data-dependent unpredictable branch must cost more than a
        perfectly biased one."""
        predictable = """
    mov rcx, 0
loop:
    add rcx, 1
    cmp rcx, 400
    jne loop
"""
        # LCG-driven branch: taken ~half the time, unpredictably.
        random_branch = """
    mov r10, 12345
    mov rcx, 0
loop:
    imul r10, 6364136223846793005
    add r10, 1442695040888963407
    mov rax, r10
    shr rax, 33
    and rax, 1
    cmp rax, 0
    je skip
    add rdx, 1
skip:
    add rcx, 1
    cmp rcx, 200
    jne loop
"""
        cheap = cycles_for(predictable, Variant.INSECURE)
        per_instr_cheap = cheap / (3 * 400)
        expensive = cycles_for(random_branch, Variant.INSECURE)
        per_instr_expensive = expensive / (10 * 200)
        assert per_instr_expensive > per_instr_cheap


class TestTimingStatsExposure:
    def test_squash_fraction_bounded(self):
        program = assemble_main(POINTER_LOOP)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run()
        stats = machine.timing.finish()
        assert 0.0 <= stats.squash_fraction < 1.0

    def test_ipc_positive_and_bounded(self):
        program = assemble_main(COMPUTE_LOOP)
        machine = Chex86Machine(program, variant=Variant.INSECURE)
        result = machine.run()
        assert 0.1 < result.ipc <= DEFAULT_CONFIG.issue_width

    def test_memory_bound_code_has_low_ipc(self):
        strided_misses = """
    mov rbx, 0x2000000
    mov rcx, 0
miss:
    mov rax, [rbx]
    add rbx, 4096
    add rcx, 1
    cmp rcx, 200
    jne miss
"""
        memory_bound = cycles_for(strided_misses, Variant.INSECURE)
        compute = cycles_for(COMPUTE_LOOP, Variant.INSECURE)
        # 200 cache-missing loads cost far more than 64 ALU iterations.
        assert memory_bound > compute
