"""Unit tests for the Table I pointer-tracking rule database."""

import pytest

from repro.core import MEMORY_POLICY, Propagation, Rule, RuleDatabase, WILD_PID
from repro.microop import AddrMode, AluOp, Uop, UopKind


def uop(kind, alu=None, mode=AddrMode.REG_REG, srcs=(), dst=0):
    return Uop(kind, alu=alu, addr_mode=mode, srcs=srcs, dst=dst)


@pytest.fixture
def db():
    return RuleDatabase.table1()


class TestTable1Propagation:
    def test_mov_copies_pid(self, db):
        assert db.propagate(uop(UopKind.MOV), (5,)) == 5

    def test_add_rr_takes_nonzero_source(self, db):
        add = uop(UopKind.ALU, AluOp.ADD)
        assert db.propagate(add, (0, 7)) == 7
        assert db.propagate(add, (7, 0)) == 7

    def test_add_rr_wild_loses_to_real_pid(self, db):
        add = uop(UopKind.ALU, AluOp.ADD)
        assert db.propagate(add, (WILD_PID, 7)) == 7
        assert db.propagate(add, (7, WILD_PID)) == 7

    def test_add_ri_keeps_source(self, db):
        add = uop(UopKind.ALU, AluOp.ADD, AddrMode.REG_IMM)
        assert db.propagate(add, (9,)) == 9

    def test_sub_always_first_source(self, db):
        sub = uop(UopKind.ALU, AluOp.SUB)
        assert db.propagate(sub, (3, 8)) == 3  # ptr - ptr keeps the minuend

    def test_and_masks_keep_pointer(self, db):
        and_rr = uop(UopKind.ALU, AluOp.AND)
        assert db.propagate(and_rr, (4, 0)) == 4
        and_ri = uop(UopKind.ALU, AluOp.AND, AddrMode.REG_IMM)
        assert db.propagate(and_ri, (4,)) == 4

    def test_lea_takes_base_register(self, db):
        lea = uop(UopKind.LEA)
        assert db.propagate(lea, (), base_pid=6) == 6

    def test_movi_is_wild(self, db):
        assert db.propagate(uop(UopKind.LIMM, mode=AddrMode.REG_IMM), ()) == WILD_PID

    def test_loads_and_stores_defer_to_memory(self, db):
        assert db.propagate(uop(UopKind.LD, mode=AddrMode.REG_MEM), ()) is MEMORY_POLICY
        assert db.propagate(uop(UopKind.ST, mode=AddrMode.REG_MEM), (5,)) is MEMORY_POLICY

    def test_other_ops_zero_the_pid(self, db):
        xor = uop(UopKind.ALU, AluOp.XOR)
        assert db.propagate(xor, (5, 5)) == 0
        mul = uop(UopKind.ALU, AluOp.MUL)
        assert db.propagate(mul, (5, 2)) == 0


class TestConfigurability:
    def test_seed_is_small(self):
        assert len(RuleDatabase.seed()) == 3

    def test_add_records_field_update(self):
        db = RuleDatabase.seed()
        rule = Rule("test-or", UopKind.ALU, Propagation.NONZERO_SRC, alu=AluOp.OR)
        db.add(rule)
        assert "test-or" in db.field_updates
        assert db.propagate(uop(UopKind.ALU, AluOp.OR), (0, 3)) == 3

    def test_duplicate_add_rejected(self):
        db = RuleDatabase.table1()
        with pytest.raises(ValueError):
            db.add(Rule("mov-again", UopKind.MOV, Propagation.COPY_SRC,
                        addr_mode=AddrMode.REG_REG))

    def test_remove_rule(self):
        db = RuleDatabase.table1()
        db.remove("movi")
        assert db.propagate(uop(UopKind.LIMM, mode=AddrMode.REG_IMM), ()) == 0

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            RuleDatabase.table1().remove("no-such-rule")

    def test_memo_invalidated_on_add(self):
        db = RuleDatabase.seed()
        or_uop = uop(UopKind.ALU, AluOp.OR)
        assert db.propagate(or_uop, (0, 3)) == 0  # memoized default
        db.add(Rule("or-rr", UopKind.ALU, Propagation.NONZERO_SRC, alu=AluOp.OR))
        assert db.propagate(or_uop, (0, 3)) == 3


class TestReporting:
    def test_table_rows_cover_all_rules_plus_default(self):
        db = RuleDatabase.table1()
        rows = db.to_rows()
        assert len(rows) == len(db) + 1
        assert rows[-1]["uop"] == "all other operations"

    def test_learned_rules_marked(self):
        rows = RuleDatabase.table1().to_rows()
        by_name = {(r["uop"], r["addr_mode"]): r["learned"] for r in rows}
        assert by_name[("mov", "reg-reg")] is False  # expert seed
        assert by_name[("ld", "any")] is True        # checker-learned
