"""Integration tests: functional correctness of program execution."""

import pytest

from repro.core import Chex86Machine, MachineError, Variant
from repro.isa import Reg, assemble

from conftest import assemble_main, run_program


def regs_after(body, variant=Variant.INSECURE, globals_asm=""):
    program = assemble_main(body, globals_asm=globals_asm)
    machine = Chex86Machine(program, variant=variant, halt_on_violation=False)
    machine.run()
    return machine.regs


class TestArithmetic:
    def test_mov_add_sub(self):
        regs = regs_after("""
            mov rax, 10
            mov rbx, 3
            add rax, rbx
            sub rax, 5
        """)
        assert regs[Reg.RAX] == 8

    def test_mul_shift_logic(self):
        regs = regs_after("""
            mov rax, 6
            mov rbx, 7
            imul rax, rbx
            shl rax, 1
            mov rcx, 0xF0
            and rcx, 0x3C
            or  rcx, 1
            xor rbx, rbx
        """)
        assert regs[Reg.RAX] == 84
        assert regs[Reg.RCX] == 0x31
        assert regs[Reg.RBX] == 0

    def test_inc_dec_neg_not(self):
        regs = regs_after("""
            mov rax, 5
            inc rax
            dec rax
            dec rax
            mov rbx, 1
            neg rbx
            mov rcx, 0
            not rcx
        """)
        assert regs[Reg.RAX] == 4
        assert regs[Reg.RBX] == (1 << 64) - 1
        assert regs[Reg.RCX] == (1 << 64) - 1

    def test_lea_address_math(self):
        regs = regs_after("""
            mov rbx, 0x1000
            mov rcx, 4
            lea rax, [rbx + rcx*8 + 16]
        """)
        assert regs[Reg.RAX] == 0x1000 + 32 + 16


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        regs = regs_after("""
            mov rbx, 0x10000
            mov [rbx], 1234
            mov rax, [rbx]
        """)
        assert regs[Reg.RAX] == 1234

    def test_rmw_memory_form(self):
        regs = regs_after("""
            mov rbx, 0x10000
            mov [rbx], 10
            add [rbx], 5
            mov rax, [rbx]
        """)
        assert regs[Reg.RAX] == 15

    def test_load_op_form(self):
        regs = regs_after("""
            mov rbx, 0x10000
            mov [rbx], 10
            mov rax, 1
            add rax, [rbx]
        """)
        assert regs[Reg.RAX] == 11

    def test_push_pop(self):
        regs = regs_after("""
            mov rax, 42
            push rax
            mov rax, 0
            pop rbx
        """)
        assert regs[Reg.RBX] == 42

    def test_globals_initialized(self):
        regs = regs_after("""
            mov rbx, [table.addr]
            mov rax, [rbx]
            mov rcx, [rbx + 8]
        """, globals_asm=".global table, 24, 111, 222\n")
        assert regs[Reg.RAX] == 111
        assert regs[Reg.RCX] == 222


class TestControlFlow:
    def test_loop_counts(self):
        regs = regs_after("""
            mov rax, 0
            mov rcx, 0
        top:
            add rax, rcx
            add rcx, 1
            cmp rcx, 10
            jne top
        """)
        assert regs[Reg.RAX] == 45

    def test_conditional_variants(self):
        regs = regs_after("""
            mov rax, 0
            mov rbx, 5
            cmp rbx, 10
            jl  less
            mov rax, 111
            jmp out
        less:
            mov rax, 222
        out:
            nop
        """)
        assert regs[Reg.RAX] == 222

    def test_signed_comparison(self):
        regs = regs_after("""
            mov rax, 0
            mov rbx, -1
            cmp rbx, 1
            jl neg_path
            mov rax, 1
            jmp out
        neg_path:
            mov rax, 2
        out:
            nop
        """)
        assert regs[Reg.RAX] == 2

    def test_unsigned_comparison(self):
        regs = regs_after("""
            mov rax, 0
            mov rbx, -1
            cmp rbx, 1
            jb below
            mov rax, 1
            jmp out
        below:
            mov rax, 2
        out:
            nop
        """)
        assert regs[Reg.RAX] == 1  # 0xffff... is above 1 unsigned

    def test_call_ret_nesting(self):
        regs = regs_after("""
            mov rax, 0
            call f1
            add rax, 100
            jmp done
        f1:
            call f2
            add rax, 10
            ret
        f2:
            add rax, 1
            ret
        done:
            nop
        """)
        assert regs[Reg.RAX] == 111


class TestHeapRoutines:
    def test_malloc_returns_heap_pointer(self):
        regs = regs_after("""
            mov rdi, 64
            call malloc
        """, variant=Variant.UCODE_PREDICTION)
        assert regs[Reg.RAX] != 0

    def test_calloc_zeroes_memory(self):
        regs = regs_after("""
            mov rdi, 4
            mov rsi, 8
            call calloc
            mov rbx, [rax]
        """, variant=Variant.UCODE_PREDICTION)
        assert regs[Reg.RBX] == 0

    def test_realloc_preserves_contents(self):
        regs = regs_after("""
            mov rdi, 16
            call malloc
            mov [rax], 777
            mov rdi, rax
            mov rsi, 256
            call realloc
            mov rbx, [rax]
        """, variant=Variant.UCODE_PREDICTION)
        assert regs[Reg.RBX] == 777


class TestRunHarness:
    def test_instruction_budget_stops_infinite_loop(self):
        result = run_program("    nop\nspin:\n    jmp spin",
                             variant=Variant.INSECURE, max_instructions=1_000)
        assert not result.halted
        assert result.instructions == 1_000

    def test_jump_outside_text_raises(self):
        program = assemble_main("    mov rbx, 0x123458\n    jmp rbx")
        machine = Chex86Machine(program, variant=Variant.INSECURE)
        with pytest.raises(MachineError):
            machine.run()

    def test_result_metrics_populated(self):
        result = run_program("    mov rax, 1\n    mov rbx, 2")
        assert result.halted
        assert result.instructions == 3
        assert result.cycles > 0
        assert 0 < result.ipc
        assert result.uop_expansion >= 1.0

    def test_unknown_hostop_raises(self):
        program = assemble("main:\n  hostop no_such\n  halt\n", name="bad")
        machine = Chex86Machine(program, variant=Variant.INSECURE)
        with pytest.raises(MachineError):
            machine.run()
