"""Timing-model validation: microbenchmarks with known-by-hand costs.

Each microbenchmark has an analytically computable cycle count on the
Table III machine; the model must land within tolerance.  This is the
classic way to validate an approximate performance model — if these hold,
the relative comparisons of Figures 6-9 stand on calibrated ground.
"""

import pytest

from repro.core import Chex86Machine, Variant
from repro.pipeline.config import DEFAULT_CONFIG

from conftest import assemble_main


def cycles_of(body: str, variant=Variant.INSECURE) -> int:
    machine = Chex86Machine(assemble_main(body), variant=variant)
    return machine.run().cycles


def loop(body_lines, iters, counter="r9"):
    lines = [f"    mov {counter}, 0", "top:"]
    lines += [f"    {line}" for line in body_lines]
    lines += [f"    add {counter}, 1",
              f"    cmp {counter}, {iters}",
              "    jl top"]
    return "\n".join(lines)


class TestDependencyLimits:
    def test_serial_add_chain_is_one_per_cycle(self):
        """N dependent 1-cycle adds take ~N cycles (dataflow limit)."""
        n = 400
        body = "    mov rax, 0\n" + "\n".join(["    add rax, 1"] * n)
        cycles = cycles_of(body)
        assert n * 0.9 <= cycles <= n * 1.5

    def test_serial_mult_chain_is_three_per_cycle(self):
        """Dependent 3-cycle multiplies take ~3N cycles."""
        n = 200
        body = "    mov rax, 1\n" + "\n".join(["    imul rax, rax"] * n)
        cycles = cycles_of(body)
        assert 3 * n * 0.9 <= cycles <= 3 * n * 1.4

    def test_dependent_l1_load_chain_pays_l1_latency(self):
        """Pointer chasing in L1 costs ~l1_latency per hop."""
        hops = 100
        setup = ["    mov rbx, 0x30000"]
        # Build a self-loop: [0x30000] -> 0x30000, chase it `hops` times.
        setup.append("    mov rax, 0x30000")
        setup.append("    mov [rbx], rax")
        setup += ["    mov rbx, [rbx]"] * hops
        cycles = cycles_of("\n".join(setup))
        expected = hops * DEFAULT_CONFIG.l1_latency
        assert expected * 0.8 <= cycles <= expected * 1.6


class TestThroughputLimits:
    def test_independent_adds_hit_issue_width(self):
        """Six independent add chains sustain multiple uops per cycle."""
        n = 120
        regs = ["rax", "rbx", "rcx", "rdx", "rsi", "r8"]
        lines = [f"    mov {r}, 0" for r in regs]
        for _ in range(n):
            lines += [f"    add {r}, 1" for r in regs]
        cycles = cycles_of("\n".join(lines))
        instructions = n * 6
        ipc = instructions / cycles
        # Fetch is 4-wide, issue 6-wide: expect IPC well above 2.
        assert ipc > 2.0

    def test_fetch_width_bounds_ipc(self):
        """IPC can never beat the 4-wide fetch for long runs."""
        n = 200
        lines = []
        for _ in range(n):
            lines += ["    add rax, 1", "    add rbx, 1",
                      "    add rcx, 1", "    add rdx, 1",
                      "    add rsi, 1", "    add r8, 1"]
        cycles = cycles_of("\n".join(lines))
        assert (n * 6) / cycles <= DEFAULT_CONFIG.fetch_width + 0.2


class TestMemoryLatencies:
    def test_cold_dram_loads_cost_full_latency(self):
        """Dependent loads at page stride (all cold) pay the DRAM trip."""
        hops = 30
        lines = ["    mov rbx, 0x4000000"]
        for i in range(hops):
            lines.append(f"    mov rax, [rbx + {i * 4096}]")
            lines.append("    add rbx, rax")  # serialize on each load
        cycles = cycles_of("\n".join(lines))
        full_trip = (DEFAULT_CONFIG.l1_latency + DEFAULT_CONFIG.l2_latency
                     + DEFAULT_CONFIG.mem_latency)
        assert cycles >= hops * full_trip * 0.8

    def test_branch_mispredict_penalty_scale(self):
        """An unpredictable branch costs roughly the mispredict penalty."""
        iters = 300
        predictable = cycles_of(loop(["add rax, 3"], iters))
        unpredictable = cycles_of(
            "    mov r10, 99\n" + loop([
                "imul r10, 6364136223846793005",
                "add r10, 1442695040888963407",
                "mov rax, r10",
                "shr rax, 33",
                "and rax, 1",
                "cmp rax, 1",
                "je taken",
                "add rbx, 1",
                "taken:" ,
                "add rcx, 1",
            ], iters))
        # ~50% mispredicts at `penalty` each, plus the extra work.
        extra = unpredictable - predictable
        penalty = DEFAULT_CONFIG.branch_mispredict_penalty
        assert extra > iters * 0.25 * penalty


class TestCapCheckCosts:
    def test_capchecks_off_the_load_critical_path(self):
        """A dependent-load chain over heap pointers must cost roughly the
        same with and without capChecks — the paper's claim that the check
        is not on the load-to-use path (microcode variant)."""
        body = """
    mov rdi, 64
    call malloc
    mov rbx, [slot.addr]
    mov [rbx], rax
""" + loop(["mov rcx, [rbx]", "mov rdx, [rcx]", "mov rdx, [rcx + 8]"], 200)
        base = Chex86Machine(
            assemble_main(body, globals_asm=".global slot, 16\n"),
            variant=Variant.INSECURE).run().cycles
        protected = Chex86Machine(
            assemble_main(body, globals_asm=".global slot, 16\n"),
            variant=Variant.UCODE_PREDICTION).run().cycles
        assert protected <= base * 1.35

    def test_hw_only_checks_are_on_the_path(self):
        """The same chain under the hardware-only variant pays per-load."""
        body = """
    mov rdi, 64
    call malloc
    mov rbx, [slot.addr]
    mov [rbx], rax
""" + loop(["mov rcx, [rbx]", "mov rdx, [rcx]", "mov rdx, [rcx + 8]"], 200)
        prediction = Chex86Machine(
            assemble_main(body, globals_asm=".global slot, 16\n"),
            variant=Variant.UCODE_PREDICTION).run().cycles
        hw_only = Chex86Machine(
            assemble_main(body, globals_asm=".global slot, 16\n"),
            variant=Variant.HW_ONLY).run().cycles
        assert hw_only > prediction
