"""Every example script must run to completion as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "heap_exploit_forensics", "design_space_sweep",
            "rule_learning", "pointer_patterns", "spectre_v1"} <= names


def test_quickstart_tells_the_story():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    out = completed.stdout
    assert "CORRUPTED" in out          # baseline silently corrupts
    assert "out-of-bounds" in out      # CHEx86 flags it
    assert "intact" in out             # and the write never retired
