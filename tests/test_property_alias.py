"""Property-based tests for the shadow alias table and alias cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AliasCache, ShadowAliasTable, StoreBufferPids

word_addresses = st.integers(min_value=0, max_value=(1 << 47) - 8).map(
    lambda a: a & ~7)
pids = st.integers(min_value=1, max_value=1 << 30)


class TestAliasTableProperties:
    @given(st.dictionaries(word_addresses, pids, max_size=60))
    def test_table_behaves_like_a_mapping(self, mapping):
        table = ShadowAliasTable()
        for address, pid in mapping.items():
            table.set(address, pid)
        for address, pid in mapping.items():
            assert table.walk(address) == pid

    @given(st.lists(st.tuples(word_addresses, st.integers(0, 1 << 20)),
                    min_size=1, max_size=80))
    def test_last_write_wins(self, writes):
        table = ShadowAliasTable()
        expected = {}
        for address, pid in writes:
            table.set(address, pid)
            if pid:
                expected[address] = pid
            else:
                expected.pop(address, None)
        for address, pid in expected.items():
            assert table.peek(address) == pid

    @given(st.sets(word_addresses, min_size=1, max_size=50))
    def test_clear_removes_everything_set(self, addresses):
        table = ShadowAliasTable()
        for address in addresses:
            table.set(address, 7)
        for address in addresses:
            table.clear(address)
        assert table.live_entries == 0
        for address in addresses:
            assert table.peek(address) == 0

    @given(st.sets(word_addresses, min_size=1, max_size=50))
    def test_storage_nondecreasing_and_node_aligned(self, addresses):
        table = ShadowAliasTable()
        previous = table.shadow_bytes
        for address in addresses:
            table.set(address, 3)
            assert table.shadow_bytes >= previous
            previous = table.shadow_bytes
        from repro.core.alias import NODE_BYTES
        assert table.shadow_bytes % NODE_BYTES == 0


class TestAliasCacheCoherence:
    @given(st.dictionaries(word_addresses, pids, min_size=1, max_size=40))
    def test_cache_never_contradicts_table(self, mapping):
        """Through any access pattern, a cached PID equals the table's."""
        table = ShadowAliasTable()
        cache = AliasCache(entries=8, ways=2, victim_entries=2)
        for address, pid in mapping.items():
            table.set(address, pid)
        for address, pid in mapping.items():
            got, _ = cache.lookup(address, table)
            assert got == pid
        # Second pass (mixed hits/misses after evictions) must still agree.
        for address, pid in mapping.items():
            got, _ = cache.lookup(address, table)
            assert got == pid


class TestStoreBufferProperties:
    @given(st.lists(st.tuples(st.integers(1, 1000), word_addresses, pids),
                    min_size=1, max_size=50))
    def test_commit_everything_equals_direct_writes(self, stores):
        stores = sorted(stores, key=lambda s: s[0])
        buffered = ShadowAliasTable()
        direct = ShadowAliasTable()
        cache = AliasCache()
        buffer = StoreBufferPids()
        for seq, address, pid in stores:
            buffer.record(seq, address, pid)
            direct.set(address, pid)
        buffer.commit_upto(10_000, buffered, cache)
        for _, address, _ in stores:
            assert buffered.peek(address) == direct.peek(address)

    @given(st.lists(st.tuples(st.integers(1, 100), word_addresses, pids),
                    min_size=2, max_size=40),
           st.integers(1, 100))
    def test_squash_then_commit_keeps_only_older(self, stores, cut):
        stores = sorted(stores, key=lambda s: s[0])
        table = ShadowAliasTable()
        cache = AliasCache()
        buffer = StoreBufferPids()
        for seq, address, pid in stores:
            buffer.record(seq, address, pid)
        buffer.squash_after(cut)
        buffer.commit_upto(10_000, table, cache)
        survivors = ShadowAliasTable()
        for seq, address, pid in stores:
            if seq <= cut:
                survivors.set(address, pid)
        for _, address, _ in stores:
            assert table.peek(address) == survivors.peek(address)
