"""Integration tests: security detection across variants (Section VII-A)."""

import pytest

from repro.core import (
    CapabilityException,
    Chex86Machine,
    Variant,
    ViolationKind,
)

from conftest import assemble_main, run_program

SECURED = [Variant.HW_ONLY, Variant.BINARY_TRANSLATION,
           Variant.UCODE_ALWAYS_ON, Variant.UCODE_PREDICTION]

OOB_WRITE = """
    mov rdi, 64
    call malloc
    mov [rax + 64], 1
"""

UAF_READ = """
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, [rbx]
"""

DOUBLE_FREE = """
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rdi, rbx
    call free
"""


class TestDetectionAcrossVariants:
    @pytest.mark.parametrize("variant", SECURED, ids=lambda v: v.value)
    def test_oob_detected(self, variant):
        result = run_program(OOB_WRITE, variant=variant)
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    @pytest.mark.parametrize("variant", SECURED, ids=lambda v: v.value)
    def test_uaf_detected(self, variant):
        result = run_program(UAF_READ, variant=variant)
        assert result.violations.count(ViolationKind.USE_AFTER_FREE) >= 1

    @pytest.mark.parametrize("variant", SECURED, ids=lambda v: v.value)
    def test_double_free_detected(self, variant):
        result = run_program(DOUBLE_FREE, variant=variant)
        assert result.violations.count(ViolationKind.DOUBLE_FREE) == 1

    def test_insecure_baseline_detects_nothing(self):
        for body in (OOB_WRITE, UAF_READ, DOUBLE_FREE):
            result = run_program(body, variant=Variant.INSECURE)
            assert not result.flagged


class TestViolationDetails:
    def test_oob_read_one_past_end(self):
        result = run_program("""
            mov rdi, 64
            call malloc
            mov rbx, [rax + 64]
        """)
        violation = result.violations.violations[0]
        assert violation.kind is ViolationKind.OUT_OF_BOUNDS
        assert violation.pid > 0

    def test_oob_negative_offset(self):
        result = run_program("""
            mov rdi, 64
            call malloc
            mov rbx, [rax - 8]
        """)
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) >= 1

    def test_last_word_in_bounds(self):
        result = run_program("""
            mov rdi, 64
            call malloc
            mov rbx, [rax + 56]
        """)
        assert not result.flagged

    def test_invalid_free_of_stack_pointer(self):
        result = run_program("""
            mov rdi, rsp
            call free
        """)
        assert result.violations.count(ViolationKind.INVALID_FREE) == 1

    def test_invalid_free_interior_pointer(self):
        result = run_program("""
            mov rdi, 64
            call malloc
            lea rdi, [rax + 16]
            call free
        """)
        assert result.violations.count(ViolationKind.INVALID_FREE) == 1

    def test_free_null_is_benign(self):
        result = run_program("""
            mov rdi, 0
            call free
        """)
        assert not result.flagged

    def test_wild_constant_dereference(self):
        result = run_program("""
            movabs rbx, 0x7fff2000
            mov rax, [rbx]
        """)
        assert result.violations.count(ViolationKind.WILD_DEREFERENCE) == 1

    def test_heap_spray_flagged_at_capgen(self):
        result = run_program("""
            mov rdi, 0x80000000
            call malloc
        """)
        assert result.violations.count(ViolationKind.HEAP_SPRAY) == 1

    def test_use_after_realloc(self):
        result = run_program("""
            mov rdi, 16
            call malloc
            mov rbx, rax
            mov rdi, rax
            mov rsi, 1024
            call realloc
            mov rcx, [rbx]
        """)
        assert result.violations.count(ViolationKind.USE_AFTER_FREE) >= 1


class TestPointerPropagationDetection:
    """Violations must survive the Table I propagation paths."""

    def test_oob_through_copied_pointer(self):
        result = run_program("""
            mov rdi, 64
            call malloc
            mov rbx, rax
            mov rcx, rbx
            mov [rcx + 128], 1
        """)
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_oob_through_pointer_arithmetic(self):
        result = run_program("""
            mov rdi, 64
            call malloc
            add rax, 32
            add rax, 40
            mov rbx, [rax]
        """)
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_oob_through_lea(self):
        result = run_program("""
            mov rdi, 64
            call malloc
            lea rbx, [rax + 96]
            mov rcx, [rbx]
        """)
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_uaf_through_spilled_alias(self):
        result = run_program("""
            mov rdi, 64
            call malloc
            mov rbx, [cell.addr]
            mov [rbx], rax
            mov rdi, rax
            call free
            mov rax, 0
            mov rbx, [cell.addr]
            mov rcx, [rbx]
            mov rdx, [rcx]
        """, globals_asm=".global cell, 16\n")
        assert result.violations.count(ViolationKind.USE_AFTER_FREE) >= 1

    def test_oob_on_global_object(self):
        result = run_program("""
            mov rbx, [buf.addr]
            mov [rbx + 32], 1
        """, globals_asm=".global buf, 32\n")
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_untracked_hidden_global_not_flagged(self):
        # Objects absent from the symbol table are not tracked (paper: no
        # capability, no check) — accesses pass silently.
        result = run_program("""
            movabs rbx, 0x600000
            mov rax, [rbx + 64]
        """, globals_asm=".hidden dark, 32\n")
        # The movabs path makes this a wild dereference instead.
        assert result.violations.count(ViolationKind.WILD_DEREFERENCE) == 1


class TestTrapMode:
    def test_halt_on_violation_raises(self):
        program = assemble_main(OOB_WRITE)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=True)
        result = machine.run()
        assert result.halted
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_trap_stops_at_first_violation(self):
        program = assemble_main(OOB_WRITE + OOB_WRITE)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=True)
        result = machine.run()
        assert result.violations.count() == 1


class TestContextSensitivity:
    def test_checks_suppressed_outside_critical_region(self):
        program = assemble_main(OOB_WRITE)
        # Critical region that excludes the whole program text.
        machine = Chex86Machine(
            program, variant=Variant.UCODE_PREDICTION,
            critical_ranges=[(0, 1)], halt_on_violation=False)
        result = machine.run()
        assert not result.flagged
        assert machine.mcu.stats.capchecks_suppressed_context > 0

    def test_checks_enabled_inside_critical_region(self):
        program = assemble_main(OOB_WRITE)
        machine = Chex86Machine(
            program, variant=Variant.UCODE_PREDICTION,
            critical_ranges=[(program.text_base, program.text_end)],
            halt_on_violation=False)
        result = machine.run()
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_allocations_still_tracked_outside_critical_region(self):
        program = assemble_main("""
            mov rdi, 64
            call malloc
        """)
        machine = Chex86Machine(
            program, variant=Variant.UCODE_PREDICTION,
            critical_ranges=[(0, 1)], halt_on_violation=False)
        machine.run()
        assert machine.captable.stats.generated >= 1
