"""Integration tests for the multicore system (PARSEC-style runs)."""

import pytest

from repro.core import Chex86Machine, Variant, ViolationKind
from repro.heap import heap_library_asm
from repro.isa import assemble
from repro.pipeline.multicore import MulticoreMachine
from repro.pipeline.system import System
from repro.workloads import build
from repro.workloads.base import Workload


def two_thread_workload(body0: str, body1: str, globals_asm: str = ""):
    source = (globals_asm
              + "main:\n" + body0 + "\n    halt\n"
              + "worker1:\n" + body1 + "\n    halt\n"
              + heap_library_asm())
    return Workload("test-mt", "TEST", source, "two threads", threads=2,
                    entry_labels=("main", "worker1"))


class TestMulticoreBasics:
    def test_both_threads_run_to_halt(self):
        workload = two_thread_workload(
            "    mov rax, 1", "    mov rax, 2")
        result = MulticoreMachine(workload, variant=Variant.INSECURE).run()
        assert result.halted
        assert len(result.per_core) == 2
        assert result.per_core[0].machine.regs[0] == 1
        assert result.per_core[1].machine.regs[0] == 2

    def test_threads_share_the_heap(self):
        workload = two_thread_workload(
            "    mov rdi, 64\n    call malloc",
            "    mov rdi, 64\n    call malloc")
        runner = MulticoreMachine(workload, variant=Variant.UCODE_PREDICTION)
        runner.run()
        pointers = {core.regs[0] for core in runner.cores}
        assert len(pointers) == 2  # distinct chunks from one allocator
        assert runner.system.allocator.stats.total_allocs == 2

    def test_threads_have_distinct_stacks(self):
        workload = two_thread_workload(
            "    push rax\n    pop rbx", "    push rax\n    pop rbx")
        runner = MulticoreMachine(workload, variant=Variant.INSECURE)
        runner.run()
        stacks = {core.regs[7] for core in runner.cores}  # RSP
        assert len(stacks) == 2

    def test_wallclock_is_max_of_cores(self):
        workload = two_thread_workload(
            "    mov rax, 1",
            "    mov rcx, 0\nspin:\n    add rcx, 1\n    cmp rcx, 200\n"
            "    jne spin")
        result = MulticoreMachine(workload, variant=Variant.INSECURE).run()
        assert result.cycles == max(r.cycles for r in result.per_core)

    def test_program_loaded_once(self):
        workload = two_thread_workload(
            "    mov rbx, [shared.addr]\n    mov rax, [rbx]",
            "    mov rbx, [shared.addr]\n    mov rax, [rbx]",
            globals_asm=".global shared, 16, 77\n")
        runner = MulticoreMachine(workload, variant=Variant.UCODE_PREDICTION)
        runner.run()
        # One capability for the shared global, not one per core.
        generated = runner.system.captable.stats.generated
        assert generated == 1
        assert all(core.regs[0] == 77 for core in runner.cores)


class TestCoherence:
    def test_free_broadcasts_cap_invalidations(self):
        workload = two_thread_workload(
            """
    mov rdi, 64
    call malloc
    mov rdi, rax
    call free
""",
            "    mov rax, 0")
        runner = MulticoreMachine(workload, variant=Variant.UCODE_PREDICTION)
        runner.run()
        assert runner.system.coherence.cap_invalidate_messages >= 1

    def test_alias_store_broadcasts_invalidations(self):
        workload = two_thread_workload(
            """
    mov rdi, 64
    call malloc
    mov rbx, [cell.addr]
    mov [rbx], rax
""",
            "    mov rax, 0",
            globals_asm=".global cell, 16\n")
        runner = MulticoreMachine(workload, variant=Variant.UCODE_PREDICTION)
        runner.run()
        assert runner.system.coherence.alias_invalidate_messages >= 1

    def test_cross_thread_uaf_detected(self):
        """Thread 1 frees; thread 0's later dereference must still trap.

        The spin loop delays thread 0 past thread 1's free under the
        round-robin quantum."""
        workload = two_thread_workload(
            """
    mov rbx, [cell.addr]
    mov rcx, 0
wait:
    add rcx, 1
    cmp rcx, 400
    jne wait
    mov rdx, [rbx]
    mov rax, [rdx]
""",
            """
    mov rdi, 64
    call malloc
    mov rbx, [cell.addr]
    mov [rbx], rax
    mov rdi, rax
    call free
""",
            globals_asm=".global cell, 16\n")
        runner = MulticoreMachine(workload, variant=Variant.UCODE_PREDICTION,
                                  halt_on_violation=True)
        result = runner.run()
        assert result.violations.count(ViolationKind.USE_AFTER_FREE) >= 1


class TestParsecWorkloads:
    @pytest.mark.parametrize("name", ["blackscholes", "freqmine", "canneal"])
    def test_parsec_runs_clean(self, name):
        workload = build(name, 1)
        runner = MulticoreMachine(workload, variant=Variant.UCODE_PREDICTION,
                                  halt_on_violation=True)
        result = runner.run(max_instructions_per_core=400_000)
        assert result.halted
        assert not result.flagged
        assert result.instructions > workload.threads * 100
