"""Metric-coverage completeness: no stats counter is unreachable.

Every integer counter on the per-subsystem stats dataclasses — the
values ``Chex86Machine.stats_summary()`` and the paper figures consume —
must be bridged into the machine's :class:`MetricsRegistry` as a
pull-gauge (via ``register_object``), so that ``--metrics-out``
sidecars, quantum deltas, and ``repro metrics diff`` can see it.  A
counter added to a stats dataclass without a matching
``register_metrics`` entry fails here, not silently in a dashboard.
"""

import dataclasses
import inspect
import re

import pytest

from repro.core import Chex86Machine, Variant
from repro.heap import heap_library_asm
from repro.isa import assemble

PROGRAM = """
main:
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov [rbx], rdi
    mov rax, [rbx]
    mov rdi, rbx
    call free
    halt
"""


@pytest.fixture(scope="module")
def machine():
    program = assemble(PROGRAM + heap_library_asm(), name="coverage")
    machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION)
    machine.run(max_instructions=100_000)
    return machine


def stats_objects(machine):
    """Every stats dataclass the machine wires into its registry."""
    return {
        "mcu": machine.mcu.stats,
        "tracker": machine.tracker.stats,
        "predictor": machine.reload_predictor.stats,
        "capcache": machine.capcache.stats,
        "alias_cache": machine.alias_cache.stats,
        "l1i": machine.timing.l1i.stats,
        "l1d": machine.timing.l1d.stats,
        "timing": machine.timing.stats,
        "heap": machine.allocator.stats,
    }


class TestStatsCoverage:
    def test_every_integer_stat_is_a_registered_gauge(self, machine):
        registry = machine.telemetry
        missing = []
        for owner, stats in stats_objects(machine).items():
            registered = registry.registered_attributes(stats)
            for field in dataclasses.fields(stats):
                if field.type not in ("int", int):
                    continue
                if field.name not in registered:
                    missing.append(f"{owner}.{field.name}")
        assert not missing, (
            "stats counters not reachable through the metrics registry "
            f"(add them to register_metrics): {missing}")

    def test_machine_level_counters_registered(self, machine):
        registered = machine.telemetry.registered_attributes(machine)
        assert {"instructions", "total_uops", "native_uops",
                "_blocks_compiled", "_superblocks_compiled",
                "_superblock_instructions", "_superblock_bailouts",
                "_fallback_instructions"} <= set(registered)

    def test_registered_gauges_reflect_live_values(self, machine):
        """The bridge is by reference: the snapshot equals the raw
        attribute at read time for every registered source."""
        snap = machine.metrics_snapshot()
        for stats in stats_objects(machine).values():
            for attribute, metric in \
                    machine.telemetry.registered_attributes(stats).items():
                assert snap[metric] == getattr(stats, attribute), metric

    def test_stats_summary_reads_only_registered_names(self, machine):
        """Every ``snap['...']`` reference in the summary renderer
        resolves in the snapshot — the summary can never outrun the
        registry."""
        source = inspect.getsource(Chex86Machine.stats_summary)
        names = set(re.findall(r"snap\['([^']+)'\]", source))
        assert len(names) >= 15
        snap = machine.metrics_snapshot()
        unresolved = sorted(names - set(snap))
        assert not unresolved

    def test_registered_attributes_empty_for_strangers(self, machine):
        assert machine.telemetry.registered_attributes(object()) == {}


class TestViolationKindGauges:
    """Every ViolationKind has a per-kind gauge with CWE metadata, and
    the gauges partition the total violation count."""

    def test_every_kind_has_a_gauge(self, machine):
        from repro.core.violations import ViolationKind

        snap = machine.metrics_snapshot()
        for kind in ViolationKind:
            assert f"violations.{kind.value}" in snap

    def test_gauges_carry_cwe_metadata(self, machine):
        from repro.core.violations import ViolationKind

        for kind in ViolationKind:
            meta = machine.telemetry.metadata(f"violations.{kind.value}")
            assert meta == {"cwe": kind.cwe}

    def test_metadata_empty_for_plain_metrics(self, machine):
        assert machine.telemetry.metadata("machine.instructions") == {}

    def test_kind_gauges_partition_total(self):
        from repro.core.violations import ViolationKind

        program = assemble("""
main:
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov [rbx + 72], 1
    mov rdi, rbx
    call free
    mov rcx, [rbx]
    halt
""" + heap_library_asm(), name="kinds")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run(max_instructions=100_000)
        snap = machine.metrics_snapshot()
        per_kind = sum(snap[f"violations.{kind.value}"]
                       for kind in ViolationKind)
        assert per_kind == len(machine.violations.violations) > 0
        assert snap["violations.out-of-bounds"] == 1
        assert snap["violations.use-after-free"] == 1
