"""Tests for the heap library's host dispatch and ABI."""

import pytest

from repro.heap import HeapAllocator, host_dispatch_table
from repro.isa import Reg
from repro.memory import Memory
from repro.microop.uops import NUM_UREGS


@pytest.fixture
def regs_and_table():
    allocator = HeapAllocator(Memory())
    return [0] * NUM_UREGS, host_dispatch_table(allocator), allocator


class TestHostDispatch:
    def test_malloc_abi(self, regs_and_table):
        regs, table, allocator = regs_and_table
        regs[Reg.RDI] = 64
        table["heap_malloc"](regs)
        assert regs[Reg.RAX] != 0
        assert allocator.stats.total_allocs == 1

    def test_calloc_abi_zeroes(self, regs_and_table):
        regs, table, allocator = regs_and_table
        regs[Reg.RDI], regs[Reg.RSI] = 4, 8
        table["heap_calloc"](regs)
        user = regs[Reg.RAX]
        assert allocator.memory.read_words(user, 4) == [0, 0, 0, 0]

    def test_free_abi(self, regs_and_table):
        regs, table, allocator = regs_and_table
        regs[Reg.RDI] = 64
        table["heap_malloc"](regs)
        regs[Reg.RDI] = regs[Reg.RAX]
        table["heap_free"](regs)
        assert allocator.stats.total_frees == 1
        assert regs[Reg.RAX] == 0

    def test_realloc_abi(self, regs_and_table):
        regs, table, allocator = regs_and_table
        regs[Reg.RDI] = 16
        table["heap_malloc"](regs)
        old = regs[Reg.RAX]
        allocator.memory.write_word(old, 4242)
        regs[Reg.RDI], regs[Reg.RSI] = old, 256
        table["heap_realloc"](regs)
        assert allocator.memory.read_word(regs[Reg.RAX]) == 4242

    def test_table_covers_all_routines(self, regs_and_table):
        _, table, _ = regs_and_table
        assert set(table) == {"heap_malloc", "heap_calloc", "heap_realloc",
                              "heap_free"}


class TestAblationsDriver:
    def test_small_ablation_run(self):
        from repro.eval import ablations

        result = ablations.run(scale=1, benchmarks=("lbm",),
                               max_instructions=120_000)
        text = result.format_text()
        assert "context-sensitive enforcement" in text
        assert "capability-cache size" in text
        assert result.context["lbm"]["allocs_tracked_equal"] == 1.0
        # Bigger capability caches never (meaningfully) miss more.
        rates = [result.capcache_sweep["lbm"][s]
                 for s in sorted(result.capcache_sweep["lbm"])]
        for small, large in zip(rates, rates[1:]):
            assert large <= small + 0.02
