"""Edge-case and determinism tests for the machine."""

import pytest

from repro.core import Chex86Machine, Variant, ViolationKind
from repro.isa import Reg, assemble
from repro.pipeline.multicore import MulticoreMachine
from repro.workloads import build

from conftest import assemble_main, run_program


class TestDeterminism:
    def test_single_core_runs_are_identical(self):
        workload = build("perlbench", 1)
        results = []
        for _ in range(2):
            machine = Chex86Machine(assemble(workload.source, name="p"),
                                    variant=Variant.UCODE_PREDICTION,
                                    halt_on_violation=False)
            run = machine.run(max_instructions=300_000)
            results.append((run.cycles, run.uops, run.instructions,
                            tuple(machine.regs),
                            machine.capcache.stats.misses,
                            machine.reload_predictor.stats.mispredictions))
        assert results[0] == results[1]

    def test_multicore_runs_are_identical(self):
        workload = build("swaptions", 1)
        results = []
        for _ in range(2):
            runner = MulticoreMachine(workload,
                                      variant=Variant.UCODE_PREDICTION)
            result = runner.run(max_instructions_per_core=300_000)
            results.append((result.cycles, result.uops,
                            result.instructions,
                            runner.system.coherence.cap_invalidate_messages))
        assert results[0] == results[1]


class TestControlFlowEdges:
    def test_deep_recursion_overflows_ras(self):
        # 100-deep recursion against a 64-entry RAS: the deepest returns
        # mispredict, but execution stays architecturally correct.
        program = assemble_main("""
    mov rcx, 100
    mov rax, 0
    call recurse
    jmp done
recurse:
    add rax, 1
    cmp rax, rcx
    jge base
    call recurse
base:
    ret
done:
    nop
""")
        machine = Chex86Machine(program, variant=Variant.INSECURE)
        result = machine.run()
        assert result.halted
        assert machine.regs[Reg.RAX] == 100
        assert machine.predictors.ras.overflows > 0
        assert machine.predictors.stats.indirect_mispredictions > 0

    def test_indirect_jump_through_register(self):
        result = run_program("""
    mov rbx, target
    jmp rbx
    mov rax, 111
target:
    mov rax, 222
""", variant=Variant.INSECURE)
        assert result.machine.regs[Reg.RAX] == 222

    def test_computed_jump_table(self):
        result = run_program("""
    mov rbx, 0x20000
    mov rax, case1
    mov [rbx], rax
    mov rax, case2
    mov [rbx + 8], rax
    mov rcx, 1                 ; select case2
    mov rdx, [rbx + rcx*8]
    jmp rdx
case1:
    mov rax, 111
    jmp out
case2:
    mov rax, 222
out:
    nop
""", variant=Variant.INSECURE)
        assert result.machine.regs[Reg.RAX] == 222


class TestAliasEdgeCases:
    def test_store_to_load_pid_forwarding_same_instructionish(self):
        """A spill immediately reloaded must carry its PID through the
        store buffer (before the alias table ever sees it)."""
        result = run_program("""
    mov rdi, 64
    call malloc
    mov rbx, [cell.addr]
    mov [rbx], rax          ; spill
    mov rcx, [rbx]          ; reload in the very next instruction
    mov rdx, [rcx + 72]     ; OOB through the forwarded PID
""", globals_asm=".global cell, 16\n")
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_data_overwrite_clears_alias(self):
        """Storing a data value over a spilled pointer kills the alias;
        the stale slot no longer grants capability identity."""
        program = assemble_main("""
    mov rdi, 64
    call malloc
    mov rbx, [cell.addr]
    mov [rbx], rax          ; spill a pointer
    mov [rbx], 12345        ; overwrite with data
    halt
""", globals_asm=".global cell, 16\n")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run()
        cell = next(g for g in program.globals if g.name == "cell")
        assert machine.alias_table.peek(cell.address) == 0

    def test_store_immediate_clears_alias_too(self):
        program = assemble_main("""
    mov rdi, 64
    call malloc
    mov rbx, [cell.addr]
    mov [rbx], rax
    halt
""", globals_asm=".global cell, 16\n")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run()
        cell = next(g for g in program.globals if g.name == "cell")
        assert machine.alias_table.peek(cell.address) > 0


class TestHeapEdgeCases:
    def test_realloc_null_behaves_like_malloc(self):
        result = run_program("""
    mov rdi, 0
    mov rsi, 64
    call realloc
    mov [rax + 56], 1
""")
        assert not result.flagged

    def test_realloc_to_zero_frees(self):
        result = run_program("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    mov rsi, 0
    call realloc
    mov rcx, [rbx]
""")
        assert result.violations.count(ViolationKind.USE_AFTER_FREE) == 1

    def test_malloc_failure_path_null_capability(self):
        """A failed allocation (wilderness exhausted) leaves an invalid
        capability; dereferencing the NULL return is flagged."""
        from repro.pipeline.system import System
        from repro.heap import HeapAllocator

        program = assemble_main("""
    mov rdi, 4096
    call malloc
    mov rdi, 4096
    call malloc
    mov rbx, [rax]          ; rax == 0 after the failed second malloc
""")
        system = System()
        system.allocator = HeapAllocator(system.memory, limit=4160)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                system=system, halt_on_violation=False)
        machine.host_table.update(
            __import__("repro.heap.library", fromlist=["host_dispatch_table"])
            .host_dispatch_table(system.allocator))
        result = machine.run()
        assert machine.regs[Reg.RAX] == 0
        assert result.flagged  # NULL+0 deref caught (invalid capability)


class TestPipelinePressure:
    def test_rob_pressure_on_long_miss_chain(self):
        """Hundreds of independent ops behind a long-latency chain must
        eventually stall dispatch on the ROB."""
        body = ["    mov rbx, 0x2000000"]
        for i in range(6):
            body.append(f"    mov rbx, [rbx + {4096 * (i + 1)}]")
        for i in range(300):
            body.append("    add rcx, 1")
        program = assemble_main("\n".join(body))
        machine = Chex86Machine(program, variant=Variant.INSECURE)
        machine.run()
        assert machine.timing.stats.rob_stall_events >= 0  # model exercised
        assert machine.timing.stats.l1d_misses >= 5
