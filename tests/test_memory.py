"""Unit tests for the sparse simulated memory."""

import pytest

from repro.memory import Memory, MemoryError_, PAGE_SIZE


class TestWordAccess:
    def test_read_uninitialized_is_zero(self):
        assert Memory().read_word(0x1000) == 0

    def test_write_read_roundtrip(self):
        memory = Memory()
        memory.write_word(0x2000, 0xDEADBEEF)
        assert memory.read_word(0x2000) == 0xDEADBEEF

    def test_values_truncate_to_64_bits(self):
        memory = Memory()
        memory.write_word(0x2000, 1 << 64)
        assert memory.read_word(0x2000) == 0

    def test_unaligned_rejected(self):
        memory = Memory()
        with pytest.raises(MemoryError_):
            memory.read_word(0x2001)
        with pytest.raises(MemoryError_):
            memory.write_word(0x2004, 1)  # word-aligned means 8 bytes

    def test_adjacent_words_independent(self):
        memory = Memory()
        memory.write_word(0x3000, 1)
        memory.write_word(0x3008, 2)
        assert memory.read_word(0x3000) == 1
        assert memory.read_word(0x3008) == 2


class TestMeters:
    def test_metered_traffic(self):
        memory = Memory()
        memory.write_word(0x1000, 1)
        memory.read_word(0x1000)
        assert memory.stats.reads == 1
        assert memory.stats.writes == 1
        assert memory.stats.bytes_total == 16

    def test_peek_poke_unmetered(self):
        memory = Memory()
        memory.poke_word(0x1000, 9)
        assert memory.peek_word(0x1000) == 9
        assert memory.stats.reads == 0
        assert memory.stats.writes == 0

    def test_resident_pages_grow_on_write(self):
        memory = Memory()
        assert memory.resident_pages == 0
        memory.write_word(0x0, 1)
        memory.write_word(PAGE_SIZE, 1)
        assert memory.resident_pages == 2
        assert memory.resident_bytes == 2 * PAGE_SIZE

    def test_reads_do_not_materialize_pages(self):
        memory = Memory()
        memory.read_word(0x5000)
        assert memory.resident_pages == 0


class TestBulkHelpers:
    def test_fill_and_read_words(self):
        memory = Memory()
        memory.fill_words(0x4000, [5, 6, 7])
        assert memory.read_words(0x4000, 3) == [5, 6, 7]

    def test_fill_metered_flag(self):
        memory = Memory()
        memory.fill_words(0x4000, [1], metered=True)
        assert memory.stats.writes == 1
