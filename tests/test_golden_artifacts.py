"""Golden-artifact regression: a committed cell fixture pins the
simulated numbers.

``tests/golden/fig6_cell_lbm_ucode-prediction.json`` holds the encoded
result of one Figure 6 cell exactly as the engine caches it.  Any change
to the simulator that shifts what that cell computes — cycle accounting,
uop expansion, cache modelling, metric names — fails here first, with a
field-level diff instead of a downstream "Figure 6 looks different".

If the change is *intentional*, regenerate the fixture:

    PYTHONPATH=src python - <<'EOF'
    import json
    from pathlib import Path
    from repro.eval.engine import CellSpec, compute_cell, encode_result
    spec = CellSpec(workload="lbm", defense="ucode-prediction",
                    max_instructions=200_000)
    path = Path("tests/golden/fig6_cell_lbm_ucode-prediction.json")
    path.write_text(json.dumps(
        {"spec": spec.payload(), "result": encode_result(
            spec, compute_cell(spec))}, indent=2, sort_keys=True) + "\n")
    EOF
"""

import json
from pathlib import Path

import pytest

from repro.eval.engine import (
    CellSpec,
    compute_cell,
    decode_result,
    encode_result,
)

GOLDEN = Path(__file__).parent / "golden" / \
    "fig6_cell_lbm_ucode-prediction.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def fresh(golden):
    spec = CellSpec.from_payload(golden["spec"])
    return spec, encode_result(spec, compute_cell(spec))


def test_fixture_spec_round_trips(golden):
    spec = CellSpec.from_payload(golden["spec"])
    assert spec.payload() == golden["spec"]
    assert spec.workload == "lbm"
    assert spec.defense == "ucode-prediction"


def test_cell_matches_golden_fixture(golden, fresh):
    _, encoded = fresh
    expected = golden["result"]["benchmark_run"]
    actual = encoded["benchmark_run"]
    assert set(actual) == set(expected), (
        "BenchmarkRun field set changed — regenerate the fixture if "
        "intentional (see module docstring)")
    diverged = {field: (expected[field], actual[field])
                for field in expected if actual[field] != expected[field]}
    assert not diverged, (
        f"simulated cell diverged from golden fixture "
        f"(expected, actual): {diverged}")


def test_golden_result_decodes(golden, fresh):
    """The committed encoding is still decodable, and decoding it yields
    exactly what a fresh simulation yields."""
    spec, encoded = fresh
    restored = decode_result(spec, golden["result"])
    assert restored == decode_result(spec, encoded)
