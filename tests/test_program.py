"""Unit tests for the Program representation and instruction validation."""

import pytest

from repro.isa import (
    GlobalObject,
    Imm,
    Instr,
    LabelRef,
    Mem,
    Op,
    Program,
    Reg,
    find_mem_refs,
)
from repro.isa.instructions import halt, jmp, mov, nop


class TestAddressing:
    def make(self):
        return Program([nop(label="main"), nop(), halt()], name="p")

    def test_slots_are_four_bytes(self):
        program = self.make()
        assert program.address_of(0) == program.text_base
        assert program.address_of(2) == program.text_base + 8
        assert program.text_end == program.text_base + 12

    def test_index_roundtrip(self):
        program = self.make()
        for i in range(3):
            assert program.index_of(program.address_of(i)) == i

    def test_misaligned_address_rejected(self):
        program = self.make()
        with pytest.raises(ValueError):
            program.index_of(program.text_base + 2)

    def test_out_of_text_rejected(self):
        program = self.make()
        with pytest.raises(ValueError):
            program.index_of(program.text_end)


class TestResolution:
    def test_label_operand_becomes_address(self):
        program = Program([jmp("end", label="main"), nop(), halt(label="end")])
        resolved = program.fetch(program.entry)
        assert resolved.operands[0] == Imm(program.labels["end"])

    def test_symbolic_disp_resolves(self):
        globals_ = [GlobalObject("g", 0x600000, 16)]
        instr = Instr(Op.MOV, (Reg.RAX, Mem(disp=8, disp_symbol="g")))
        program = Program([Instr(Op.NOP, (), label="main"), instr, halt()],
                          globals_)
        mem = program.fetch(program.address_of(1)).operands[1]
        assert mem.disp == 0x600008
        assert mem.disp_symbol is None

    def test_global_symbol_conflicts_with_label(self):
        with pytest.raises(ValueError):
            Program([nop(label="main"), halt()],
                    [GlobalObject("main", 0x600000, 8)])

    def test_undefined_symbol_raises(self):
        with pytest.raises(ValueError):
            Program([jmp("nowhere", label="main")])


class TestSymbolTable:
    def test_hidden_globals_excluded(self):
        globals_ = [GlobalObject("seen", 0x600000, 8),
                    GlobalObject("unseen", 0x600010, 8,
                                 in_symbol_table=False)]
        program = Program([nop(label="main"), halt()], globals_)
        assert [g.name for g in program.symbol_table()] == ["seen"]

    def test_find_mem_refs(self):
        program = Program([
            nop(label="main"),
            mov(Reg.RAX, Mem(base=Reg.RBX)),
            Instr(Op.PUSH, (Reg.RAX,)),
            mov(Reg.RAX, Reg.RBX),
            halt(),
        ])
        assert find_mem_refs(program) == [1, 2]


class TestInstructionValidation:
    def test_mem_to_mem_rejected(self):
        with pytest.raises(ValueError):
            Instr(Op.MOV, (Mem(base=Reg.RAX), Mem(base=Reg.RBX)))

    def test_immediate_destination_rejected(self):
        with pytest.raises(ValueError):
            Instr(Op.ADD, (Imm(1), Reg.RAX))

    def test_ret_takes_no_operands(self):
        with pytest.raises(ValueError):
            Instr(Op.RET, (Reg.RAX,))

    def test_push_requires_register(self):
        with pytest.raises(ValueError):
            Instr(Op.PUSH, (Imm(5),))

    def test_lea_requires_mem_source(self):
        with pytest.raises(ValueError):
            Instr(Op.LEA, (Reg.RAX, Reg.RBX))

    def test_cmp_allows_mem_first_operand(self):
        instr = Instr(Op.CMP, (Mem(base=Reg.RAX), Imm(0)))
        assert instr.mem_operand is not None

    def test_jump_target_kinds(self):
        Instr(Op.JMP, (LabelRef("x"),))
        Instr(Op.JMP, (Imm(0x400000),))
        Instr(Op.JMP, (Reg.RAX,))
        with pytest.raises(ValueError):
            Instr(Op.JMP, (Mem(base=Reg.RAX),))

    def test_control_flow_properties(self):
        assert Instr(Op.JNE, (Imm(0),)).is_cond_branch
        assert Instr(Op.CALL, (Imm(0),)).is_control_flow
        assert not Instr(Op.NOP, ()).is_control_flow
