"""Unit tests for the hardware checker and rule auto-construction."""

import pytest

from repro.core import (
    Chex86Machine,
    HardwareChecker,
    RuleAutoConstructor,
    RuleDatabase,
    ShadowCapabilityTable,
    Variant,
)
from repro.microop import AddrMode, AluOp, Uop, UopKind

from conftest import assemble_main


@pytest.fixture
def table():
    table = ShadowCapabilityTable()
    pid, _ = table.begin_generation(64)
    table.end_generation(pid, 0x1000)
    table.seeded_pid = pid
    return table


class TestHardwareChecker:
    def test_ground_truth_inside_block(self, table):
        checker = HardwareChecker(table)
        assert checker.ground_truth_pid(0x1010) == table.seeded_pid

    def test_ground_truth_outside(self, table):
        checker = HardwareChecker(table)
        assert checker.ground_truth_pid(0x9000) == 0

    def test_ground_truth_includes_freed(self, table):
        table.begin_free(table.seeded_pid)
        table.end_free(table.seeded_pid)
        checker = HardwareChecker(table)
        assert checker.ground_truth_pid(0x1010) == table.seeded_pid

    def test_correct_prediction_confirmed(self, table):
        checker = HardwareChecker(table)
        uop = Uop(UopKind.MOV, dst=0, srcs=(1,), addr_mode=AddrMode.REG_REG)
        assert checker.validate(uop, table.seeded_pid, 0x1010, pc=0x400000)
        assert checker.stats.confirmed == 1

    def test_missing_rule_recorded(self, table):
        checker = HardwareChecker(table)
        uop = Uop(UopKind.ALU, alu=AluOp.OR, dst=0, srcs=(0, 1),
                  addr_mode=AddrMode.REG_REG)
        assert not checker.validate(uop, 0, 0x1010, pc=0x400004)
        mismatch = checker.mismatches[0]
        assert mismatch.actual_pid == table.seeded_pid
        assert mismatch.signature == (UopKind.ALU, AluOp.OR, AddrMode.REG_REG)

    def test_untracked_value_with_zero_pid_ok(self, table):
        checker = HardwareChecker(table)
        uop = Uop(UopKind.LIMM, dst=0, addr_mode=AddrMode.REG_IMM)
        assert checker.validate(uop, 0, 12345, pc=0)
        assert checker.validate(uop, -1, 12345, pc=0)

    def test_positive_pid_for_non_address_is_mismatch(self, table):
        checker = HardwareChecker(table)
        uop = Uop(UopKind.MOV, dst=0, srcs=(1,), addr_mode=AddrMode.REG_REG)
        assert not checker.validate(uop, 42, 0x9999999, pc=0)


class TestRuleAutoConstruction:
    """Reproduces Section V-A's incremental database construction."""

    WORKLOAD = """
        mov rdi, 64
        call malloc
        mov rbx, rax          ; needs mov-rr (seed)
        lea rcx, [rbx + 8]    ; needs lea rule (learned)
        sub rcx, 8            ; needs sub-ri rule (learned)
        mov [rbx], rcx        ; needs st rule (learned)
        mov rdx, [rbx]        ; needs ld rule (learned)
        mov rsi, [rdx]
    """

    def profile(self, db):
        program = assemble_main(self.WORKLOAD)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                rules=db, enable_checker=True,
                                halt_on_violation=False)
        machine.run()
        return machine.checker

    def test_seed_database_has_mismatches(self):
        checker = self.profile(RuleDatabase.seed())
        assert checker.stats.mismatches > 0

    def test_full_database_is_clean(self):
        checker = self.profile(RuleDatabase.table1())
        assert checker.stats.mismatches == 0
        assert checker.stats.validations > 0

    def test_construction_converges(self):
        constructor = RuleAutoConstructor(self.profile)
        db, history = constructor.construct()
        assert history[-1].mismatches == 0
        learned = {step.rule_added for step in history if step.rule_added}
        assert "lea" in learned
        # The final database must be checker-clean.
        assert self.profile(db).stats.mismatches == 0

    def test_construction_stops_without_candidates(self):
        constructor = RuleAutoConstructor(self.profile, catalog=[])
        db, history = constructor.construct()
        assert history[-1].rule_added is None
        assert history[-1].mismatches > 0
