"""Tests for the shared evaluation engine (cells, cache, determinism)."""

import json

import pytest

from repro.core.variants import Variant
from repro.eval import fig6, run_benchmark
from repro.eval.common import BenchmarkRun
from repro.eval.engine import (
    CACHE_SCHEMA,
    CellSpec,
    EvalEngine,
    compute_cell,
    decode_result,
    encode_result,
)
from repro.pipeline.config import DEFAULT_CONFIG
from repro.workloads import build

BUDGET = 200_000
SMALL = ("perlbench", "lbm")


def spec(workload="perlbench", defense="insecure", **kwargs):
    kwargs.setdefault("max_instructions", BUDGET)
    return CellSpec(workload=workload, defense=defense, **kwargs)


class TestCellSpec:
    def test_equal_configs_are_the_same_cell(self):
        # Figure 7's default-sized sweep point is literally Figure 6's cell.
        a = spec(config=DEFAULT_CONFIG.with_(capcache_entries=64))
        b = spec(config=DEFAULT_CONFIG)
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_config_change_changes_key(self):
        a = spec()
        b = spec(config=DEFAULT_CONFIG.with_(capcache_entries=16))
        assert a != b
        assert a.cache_key() != b.cache_key()

    def test_budget_and_scale_change_key(self):
        base = spec()
        assert spec(max_instructions=BUDGET + 1).cache_key() \
            != base.cache_key()
        assert spec(scale=2).cache_key() != base.cache_key()

    def test_payload_round_trip(self):
        original = spec(defense="ucode-prediction",
                        config=DEFAULT_CONFIG.with_(predictor_entries=1024))
        assert CellSpec.from_payload(original.payload()) == original

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError):
            spec(defense="nonsense")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            spec(kind="nonsense")


class TestBenchmarkRunRoundTrip:
    def test_json_round_trip_equality(self):
        run = run_benchmark(build("perlbench", 1), Variant.UCODE_PREDICTION,
                            max_instructions=BUDGET)
        revived = BenchmarkRun.from_dict(
            json.loads(json.dumps(run.to_dict())))
        assert revived == run
        # Derived metrics recompute identically from the raw fields.
        assert revived.capcache_miss_rate == run.capcache_miss_rate
        assert revived.bandwidth_mb_per_s == run.bandwidth_mb_per_s

    def test_missing_field_rejected(self):
        record = run_benchmark(build("lbm", 1), Variant.INSECURE,
                               max_instructions=BUDGET).to_dict()
        del record["cycles"]
        with pytest.raises(ValueError, match="cycles"):
            BenchmarkRun.from_dict(record)

    def test_matches_direct_run(self):
        cell = spec(workload="lbm", defense="ucode-prediction")
        assert compute_cell(cell) == run_benchmark(
            build("lbm", 1), Variant.UCODE_PREDICTION,
            max_instructions=BUDGET)


class TestCache:
    def test_cold_then_warm(self, tmp_path):
        cell = spec()
        cold = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        result = cold.get(cell)
        assert cold.stats.computed == 1 and cold.stats.cached == 0

        warm = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        assert warm.get(cell) == result
        assert warm.stats.computed == 0 and warm.stats.cached == 1

    def test_memo_dedupes_within_batch(self, tmp_path):
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        cell = spec()
        engine.run_cells([cell, cell, cell])
        assert engine.stats.computed == 1

    def test_config_change_invalidates(self, tmp_path):
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        engine.get(spec())
        other = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        other.get(spec(config=DEFAULT_CONFIG.with_(capcache_entries=16)))
        assert other.stats.computed == 1 and other.stats.cached == 0

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        cell = spec()
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        expected = engine.get(cell)
        path = tmp_path / cell.cache_filename()
        path.write_text("{not json")
        again = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        assert again.get(cell) == expected
        assert again.stats.computed == 1

    def test_schema_bump_is_a_miss(self, tmp_path):
        cell = spec()
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        engine.get(cell)
        path = tmp_path / cell.cache_filename()
        record = json.loads(path.read_text())
        assert record["schema"] == CACHE_SCHEMA
        record["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(record))
        again = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        again.get(cell)
        assert again.stats.computed == 1 and again.stats.cached == 0

    def test_no_cache_engine_writes_nothing(self, tmp_path):
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path),
                            use_cache=False)
        engine.get(spec())
        assert list(tmp_path.iterdir()) == []


class TestPatternsCells:
    def test_round_trip(self, tmp_path):
        cell = spec(defense="ucode-prediction", kind="patterns",
                    min_events=6)
        profile = compute_cell(cell)
        assert profile.histogram  # perlbench has classified reload sites
        revived = decode_result(
            cell, json.loads(json.dumps(encode_result(cell, profile))))
        assert revived == profile

    def test_cached_patterns_cell(self, tmp_path):
        cell = spec(defense="ucode-prediction", kind="patterns",
                    min_events=6)
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        profile = engine.get(cell)
        warm = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        assert warm.get(cell) == profile
        assert warm.stats.cached == 1


class TestDeterminism:
    def test_serial_and_parallel_identical(self, tmp_path):
        serial = fig6.run(scale=1, benchmarks=SMALL,
                          max_instructions=BUDGET,
                          engine=EvalEngine(jobs=1, use_cache=False))
        parallel = fig6.run(scale=1, benchmarks=SMALL,
                            max_instructions=BUDGET,
                            engine=EvalEngine(jobs=2,
                                              cache_dir=str(tmp_path)))
        assert serial.format_text() == parallel.format_text()
        assert serial.runs == parallel.runs

    def test_warm_rerun_renders_identically(self, tmp_path):
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        cold = fig6.run(scale=1, benchmarks=("lbm",),
                        max_instructions=BUDGET, engine=engine)
        warm_engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        warm = fig6.run(scale=1, benchmarks=("lbm",),
                        max_instructions=BUDGET, engine=warm_engine)
        assert warm_engine.stats.computed == 0
        assert warm.format_text() == cold.format_text()

    def test_engine_path_matches_legacy_direct_path(self):
        # The engine must change *when* cells are simulated, never what
        # they contain: compare against run_benchmark called directly.
        result = fig6.run(scale=1, benchmarks=("lbm",),
                          max_instructions=BUDGET)
        direct = {
            label: run_benchmark(build("lbm", 1), defense,
                                 max_instructions=BUDGET)
            for label, defense in fig6.FIG6_LABELS
        }
        assert result.runs["lbm"] == direct


class TestEngineStats:
    def test_summary_counts(self, tmp_path):
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        engine.run_cells([spec(), spec(defense="ucode-prediction")])
        assert engine.stats.computed == 2
        assert engine.stats.simulated_instructions > 0
        assert "2 cell(s) simulated" in engine.stats.summary()

    def test_progress_lines(self, tmp_path):
        lines = []
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path),
                            echo=lines.append)
        engine.get(spec())
        assert any("perlbench/insecure" in line for line in lines)
        assert any("engine:" in line for line in lines)
