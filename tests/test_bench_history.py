"""Tests for the perf-regression trend table (``repro bench history``).

The tracker reads the committed ``BENCH_*.json`` records + the pinned
hot-loop baseline and judges each quantity: relative gate on simulated
MIPS (higher is better), absolute gate on SimPoint worst-case error,
informational rows for everything without a baseline contract.
"""

import json

from repro.analysis.benchtrack import (
    DEFAULT_MAX_ERROR,
    DEFAULT_MAX_REGRESSION,
    HOTLOOP_BASELINE,
    HOTLOOP_RECORD,
    SIMPOINT_RECORD,
    BenchRow,
    collect,
    _mips_row,
)


def write_records(tmp_path, *, mips=0.10, base_mips=0.10,
                  worst_error=0.02, overhead=0.5):
    hotloop = {
        "version": "1", "scale": 1,
        "aggregate_simulated_mips": mips,
        "workloads": [
            {"workload": "mcf", "simulated_mips": mips},
            {"workload": "deepsjeng", "simulated_mips": mips * 1.2},
        ],
        "telemetry": {"overhead_fraction": overhead},
    }
    (tmp_path / HOTLOOP_RECORD).write_text(json.dumps(hotloop))
    simpoint = {
        "version": "1", "cell": "lbm/insecure",
        "simpoint": {"points": 4, "intervals": 20,
                     "coverage": 1.0, "worst_error": worst_error,
                     "detailed_sim_speedup": 1.3},
    }
    (tmp_path / SIMPOINT_RECORD).write_text(json.dumps(simpoint))
    baseline_path = tmp_path / HOTLOOP_BASELINE
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(json.dumps({
        "aggregate_simulated_mips": base_mips,
        "workloads": [
            {"workload": "mcf", "simulated_mips": base_mips},
            {"workload": "deepsjeng", "simulated_mips": base_mips * 1.2},
        ],
    }))
    return tmp_path


class TestMipsRow:
    def test_within_gate_is_ok(self):
        row = _mips_row("hotloop", "m", 0.09, 0.10, 0.30)
        assert row.verdict == "ok"
        assert row.delta == (0.09 - 0.10) / 0.10

    def test_below_gate_is_regression(self):
        row = _mips_row("hotloop", "m", 0.06, 0.10, 0.30)
        assert row.verdict == "regression"
        assert "gate" in row.note

    def test_above_gate_is_improved(self):
        row = _mips_row("hotloop", "m", 0.20, 0.10, 0.30)
        assert row.verdict == "improved"
        assert "re-baselining" in row.note

    def test_no_baseline_is_info(self):
        assert _mips_row("hotloop", "m", 0.1, None, 0.3).verdict == "info"
        assert _mips_row("hotloop", "m", 0.1, 0.0, 0.3).verdict == "info"


class TestCollect:
    def test_all_green(self, tmp_path):
        write_records(tmp_path)
        report = collect(record_dir=tmp_path)
        assert report.missing == []
        assert report.regressions() == []
        metrics = {row.metric for row in report.rows}
        assert {"aggregate_simulated_mips", "mcf.simulated_mips",
                "telemetry.overhead_fraction", "worst_error",
                "detailed_sim_speedup", "coverage"} <= metrics
        assert "verdict: ok" in report.format_text()

    def test_throughput_regression_trips(self, tmp_path):
        write_records(tmp_path, mips=0.05, base_mips=0.10)
        report = collect(record_dir=tmp_path)
        bad = report.regressions()
        assert {row.metric for row in bad} \
            == {"aggregate_simulated_mips", "mcf.simulated_mips",
                "deepsjeng.simulated_mips"}
        assert "regression(s)" in report.format_text()

    def test_simpoint_error_gated_absolutely(self, tmp_path):
        write_records(tmp_path, worst_error=0.25)
        report = collect(record_dir=tmp_path)
        bad = report.regressions()
        assert [row.metric for row in bad] == ["worst_error"]
        assert bad[0].baseline == DEFAULT_MAX_ERROR
        # A looser gate clears it.
        loose = collect(record_dir=tmp_path, max_error=0.5)
        assert loose.regressions() == []

    def test_missing_records_reported_not_fatal(self, tmp_path):
        report = collect(record_dir=tmp_path)
        assert set(report.missing) == {HOTLOOP_RECORD, SIMPOINT_RECORD}
        assert report.rows == []
        assert "no BENCH_hotloop.json record" in report.format_text()

    def test_corrupt_record_treated_as_missing(self, tmp_path):
        write_records(tmp_path)
        (tmp_path / HOTLOOP_RECORD).write_text("{not json")
        report = collect(record_dir=tmp_path)
        assert HOTLOOP_RECORD in report.missing
        # The simpoint rows still appear.
        assert any(row.source == "simpoint" for row in report.rows)

    def test_explicit_baseline_path(self, tmp_path):
        write_records(tmp_path, mips=0.10, base_mips=0.10)
        other = tmp_path / "other_baseline.json"
        other.write_text(json.dumps(
            {"aggregate_simulated_mips": 0.50, "workloads": []}))
        report = collect(record_dir=tmp_path, baseline_path=other)
        aggregate = [row for row in report.rows
                     if row.metric == "aggregate_simulated_mips"][0]
        assert aggregate.verdict == "regression"

    def test_to_dict_json_serialisable(self, tmp_path):
        write_records(tmp_path)
        document = json.loads(json.dumps(
            collect(record_dir=tmp_path).to_dict()))
        assert document["regressions"] == 0
        assert document["max_regression"] == DEFAULT_MAX_REGRESSION
        assert all("verdict" in row for row in document["rows"])

    def test_repo_records_are_green(self):
        """The committed records themselves must pass the gates — this
        is exactly what CI's ``repro bench history --check`` enforces."""
        report = collect(record_dir=".")
        assert report.missing == []
        assert report.regressions() == []


class TestFormatting:
    def test_row_dict(self):
        row = BenchRow(source="s", metric="m", value=1.0)
        assert row.to_dict()["verdict"] == "info"
