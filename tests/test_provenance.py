"""Context-sensitive provenance attribution: recorder, forensics, engine.

Three contracts anchor this suite:

* **Chain completeness** — replaying the committed violating corpus
  seeds with provenance armed must attach a full alloc → free → access
  chain to every violation (alloc context for capability-backed kinds,
  free context for temporal kinds), and every context frame must point
  at a real CALL instruction in the program text.
* **Transparency** — arming the recorder forces the exact-stepping
  path, but must not change *what* executes: armed vs unarmed runs
  agree on architectural state, violations, and every metric outside
  the ``frontend.*`` family (which measures the superblock caches the
  armed run legitimately bypasses).
* **Attribution identity** — the per-context capability-check counts
  sum to the aggregate ``machine.mcu.stats.capchecks`` counter, so the
  collapsed-stack export is a *decomposition* of the registry numbers,
  never a separate estimate.
"""

from pathlib import Path

import pytest

from repro.core import Chex86Machine, Variant
from repro.core.snapshot import SNAPSHOT_SCHEMA, from_bytes
from repro.core.violations import ViolationKind
from repro.eval.engine import CellSpec, EvalEngine
from repro.fuzz import (
    Corpus,
    architectural_state,
    generate,
    install_protect_hook,
)
from repro.isa import Op, assemble
from repro.telemetry import provenance as prov_mod
from repro.telemetry.provenance import (
    PROVENANCE_SCHEMA,
    ProvenanceRecorder,
    ROOT_CONTEXT,
    cell_export,
    collapsed_lines,
    merge_cell_exports,
    symbolize,
    violation_json,
)

from conftest import assemble_main

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = Corpus(CORPUS_DIR)
VIOLATING = [entry for entry in CORPUS.ordered_entries()
             if entry.profile != "well-behaved"]

#: Kinds whose capability was minted by an observed allocation, so the
#: chain must carry an alloc entry.
ALLOC_KINDS = {ViolationKind.OUT_OF_BOUNDS, ViolationKind.USE_AFTER_FREE,
               ViolationKind.DOUBLE_FREE, ViolationKind.HEAP_SPRAY}
#: Temporal kinds: the chain must also carry the free that killed the
#: capability.
FREE_KINDS = {ViolationKind.USE_AFTER_FREE, ViolationKind.DOUBLE_FREE}

UAF_BODY = """
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, [rbx]
"""


@pytest.fixture(autouse=True)
def _no_leaked_arming():
    """Every test starts and ends with module-level arming off."""
    prov_mod.disarm()
    yield
    prov_mod.disarm()


def armed_machine(program, budget=200_000, variant=Variant.UCODE_PREDICTION,
                  protect_hook=False):
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=False)
    if protect_hook:
        # The permission profile's host escape (see fuzz oracles).
        install_protect_hook(machine)
    machine.enable_provenance()
    machine.run(max_instructions=budget)
    return machine


class TestRecorderUnit:
    def test_context_interning_is_stable(self):
        recorder = ProvenanceRecorder()
        recorder.on_call(0x10)
        first = recorder.current
        recorder.on_call(0x20)
        inner = recorder.current
        recorder.on_ret()
        recorder.on_ret()
        assert recorder.current == ROOT_CONTEXT
        # Replaying the same call chain lands in the same interned ids.
        recorder.on_call(0x10)
        assert recorder.current == first
        recorder.on_call(0x20)
        assert recorder.current == inner
        assert recorder.frames(inner) == [0x10, 0x20]

    def test_distinct_call_sites_get_distinct_contexts(self):
        recorder = ProvenanceRecorder()
        recorder.on_call(0x10)
        a = recorder.current
        recorder.on_ret()
        recorder.on_call(0x18)
        b = recorder.current
        assert a != b
        assert recorder.frames(a) == [0x10]
        assert recorder.frames(b) == [0x18]

    def test_unbalanced_ret_degrades_to_root(self):
        recorder = ProvenanceRecorder()
        recorder.on_ret()
        assert recorder.current == ROOT_CONTEXT
        recorder.on_call(0x10)
        recorder.on_ret()
        recorder.on_ret()  # one too many
        assert recorder.current == ROOT_CONTEXT
        assert recorder.depth() == 0

    def test_lifecycle_history_is_bounded_keeping_alloc(self):
        recorder = ProvenanceRecorder(history_limit=4)
        recorder.on_capgen(7, 0x100, cycle=1, size=64)
        for n in range(10):
            recorder.on_capfree(7, 0x200 + n, cycle=2 + n)
        history = recorder.lifecycles[7]
        assert len(history) == 4
        assert history[0][0] == "alloc"          # original alloc survives
        assert history[-1][2] == 0x200 + 9       # newest event kept
        assert recorder.truncated[7] == 7        # 11 events, limit 4

    def test_counter_tables_and_collapsed_roundtrip(self):
        recorder = ProvenanceRecorder()
        recorder.on_call(0x10)
        recorder.on_check(0x40)
        recorder.on_check(0x40)
        recorder.on_walk(0x48)
        recorder.on_inject(0x40, 5)
        recorder.on_reload(0x48, "PNA0")
        assert recorder.total("capchecks") == 2
        assert recorder.total("alias_walks") == 1
        assert recorder.total("uop_injections") == 5
        folded = recorder.collapsed("capchecks")
        assert folded == {"0x10;0x40": 2}
        assert collapsed_lines(folded) == ["0x10;0x40 2"]
        with pytest.raises(ValueError):
            recorder.total("not-a-counter")

    def test_symbolize_prefers_nearest_preceding_label(self):
        from repro.isa.instructions import INSTR_SLOT

        program = assemble_main("    mov rax, 1\n    mov rbx, 2")
        base = program.labels["main"]
        assert symbolize(program, base) == "main"
        assert symbolize(program, base + INSTR_SLOT) \
            == f"main+{INSTR_SLOT:#x}"
        assert symbolize(program, base - 8) == f"{base - 8:#x}"
        assert symbolize(None, 0x40) == "0x40"

    def test_export_shape(self):
        recorder = ProvenanceRecorder()
        recorder.on_call(0x10)
        recorder.on_check(0x40)
        export = recorder.export()
        assert export["schema"] == PROVENANCE_SCHEMA
        assert export["contexts"] == 2
        assert export["totals"]["capchecks"] == 1
        assert export["pcs"]["capchecks"] == {"0x40": 1}


class TestCorpusChainCompleteness:
    """Satellite: replay every committed violating seed armed and demand
    complete, resolvable provenance chains."""

    def test_corpus_reaches_every_violation_kind(self):
        profiles = {entry.profile for entry in VIOLATING}
        assert {kind.value for kind in ViolationKind} <= profiles

    @pytest.mark.parametrize(
        "entry", VIOLATING,
        ids=[entry.filename.removesuffix(".json") for entry in VIOLATING])
    def test_armed_replay_has_complete_chains(self, entry):
        fuzz_program = generate(entry.seed, entry.profile)
        program = assemble(fuzz_program.source, name=fuzz_program.name)
        machine = armed_machine(program, budget=entry.budget,
                                protect_hook=entry.profile == "permission")
        violations = machine.violations.violations
        assert violations, f"seed {entry.seed} ({entry.profile}) was benign"
        for violation in violations:
            chain = violation.provenance
            assert chain is not None, f"unenriched violation: {violation}"
            access = chain["access"]
            assert access is not None and access["pc"] \
                == violation.instr_address
            assert len(access["context"]) == len(access["frames"])
            if violation.kind in ALLOC_KINDS:
                assert chain["alloc"] is not None, (
                    f"{violation.kind.value}: no allocation context")
                assert chain["alloc"]["event"] == "alloc"
                assert chain["alloc"]["size"] > 0
            if violation.kind in FREE_KINDS:
                assert chain["free"] is not None, (
                    f"{violation.kind.value}: no free context")
                assert chain["free"]["cycle"] \
                    >= chain["alloc"]["cycle"]
            # Every context frame is a real CALL site in the text.
            for part in (chain["alloc"], chain["free"], access):
                if part is None:
                    continue
                for pc in part["context"]:
                    assert program.fetch(pc).op is Op.CALL, (
                        f"context pc {pc:#x} is not a call site")


class TestArmedUnarmedDifferential:
    """Satellite: arming provenance must be observationally invisible."""

    @pytest.mark.parametrize(
        "entry", VIOLATING[:4],
        ids=[entry.filename.removesuffix(".json")
             for entry in VIOLATING[:4]])
    def test_identical_run(self, entry):
        fuzz_program = generate(entry.seed, entry.profile)
        program = assemble(fuzz_program.source, name=fuzz_program.name)

        permission = entry.profile == "permission"
        plain = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                              halt_on_violation=False)
        if permission:
            install_protect_hook(plain)
        plain_result = plain.run(max_instructions=entry.budget)
        armed = armed_machine(program, budget=entry.budget,
                              protect_hook=permission)

        assert armed.instructions == plain_result.instructions
        assert armed.timing.finish().cycles == plain.timing.finish().cycles
        assert architectural_state(armed) == architectural_state(plain)
        # Violation.__str__ excludes provenance, so the logs compare
        # equal even though the armed run's records carry chains.
        assert [str(v) for v in armed.violations.violations] \
            == [str(v) for v in plain.violations.violations]

        def comparable(machine):
            # frontend.* measures the superblock caches the armed run
            # bypasses; everything the caches *execute* must agree.
            return {key: value
                    for key, value in machine.metrics_snapshot().items()
                    if not key.startswith("frontend.")}

        assert comparable(armed) == comparable(plain)

    def test_armed_run_bails_out_of_superblocks(self):
        program = assemble_main(UAF_BODY)
        machine = armed_machine(program)
        counters = machine.phase_counters()
        assert counters["frontend.superblock_instructions"] == 0
        assert counters["frontend.fallback_instructions"] \
            == machine.instructions


class TestAttributionIdentity:
    """Acceptance: collapsed per-context check counts sum to the
    aggregate registry counter."""

    @pytest.mark.parametrize("variant", (Variant.UCODE_ALWAYS_ON,
                                         Variant.UCODE_PREDICTION))
    def test_capcheck_counts_sum_to_mcu_aggregate(self, variant):
        program = assemble_main(UAF_BODY)
        machine = armed_machine(program, variant=variant)
        recorder = machine.provenance
        assert machine.mcu.stats.capchecks > 0
        assert recorder.total("capchecks") == machine.mcu.stats.capchecks
        folded = recorder.collapsed("capchecks")
        assert sum(folded.values()) == machine.mcu.stats.capchecks

    def test_uop_injection_counts_sum_to_mcu_aggregate(self):
        program = assemble_main(UAF_BODY)
        machine = armed_machine(program)
        recorder = machine.provenance
        assert machine.mcu.stats.injected_uops > 0
        assert recorder.total("uop_injections") \
            == machine.mcu.stats.injected_uops


class TestViolationEnrichment:
    def test_uaf_chain_orders_alloc_free_access(self):
        machine = armed_machine(assemble_main(UAF_BODY))
        [violation] = machine.violations.violations
        assert violation.kind is ViolationKind.USE_AFTER_FREE
        chain = violation.provenance
        assert chain["alloc"]["cycle"] <= chain["free"]["cycle"]
        assert chain["alloc"]["size"] == 64
        # The faulting load sits at top level, so its context is empty;
        # the alloc/free events happened inside malloc/free.
        assert chain["access"]["frames"] == []
        assert chain["alloc"]["frames"][-1].startswith("main")
        # str() excludes provenance: diagnostics render it separately.
        assert "provenance" not in str(violation)

    def test_unarmed_violation_has_no_provenance(self):
        program = assemble_main(UAF_BODY)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run(max_instructions=200_000)
        [violation] = machine.violations.violations
        assert violation.provenance is None

    def test_violation_json_carries_cwe_and_chain(self):
        machine = armed_machine(assemble_main(UAF_BODY))
        [violation] = machine.violations.violations
        record = violation_json(violation)
        assert record["kind"] == "use-after-free"
        assert record["cwe"] == "CWE-416"
        assert record["provenance"]["free"] is not None


class TestSnapshotRoundtrip:
    def test_armed_snapshot_restores_recorder_state(self):
        program = assemble_main(UAF_BODY)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.enable_provenance()
        machine.run_quantum(6)
        blob = machine.snapshot()
        assert from_bytes(blob)["state"]["provenance"] is not None
        assert SNAPSHOT_SCHEMA == 3

        restored = Chex86Machine.restore(blob)
        assert restored.provenance is not None
        machine.run(max_instructions=200_000)
        restored.run(max_instructions=200_000)
        assert restored.provenance.collapsed("capchecks") \
            == machine.provenance.collapsed("capchecks")
        assert [v.provenance for v in restored.violations.violations] \
            == [v.provenance for v in machine.violations.violations]

    def test_unarmed_snapshot_restores_unarmed(self):
        program = assemble_main("    mov rax, 1")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION)
        machine.run_quantum(1)
        restored = Chex86Machine.restore(machine.snapshot())
        assert restored.provenance is None


class TestModuleArming:
    def test_attach_is_noop_when_disarmed(self):
        program = assemble_main("    mov rax, 1")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION)
        prov_mod.attach_machine_recorder(machine, "w/insecure")
        assert machine.provenance is None
        assert prov_mod.shipment() is None

    def test_armed_attach_collects_cells(self):
        prov_mod.arm()
        machine = armed_machine(assemble_main(UAF_BODY))
        prov_mod.attach_machine_recorder(machine, "w/ucode-prediction")
        shipped = prov_mod.shipment()
        assert shipped["schema"] == PROVENANCE_SCHEMA
        [cell] = shipped["cells"]
        assert cell["label"] == "w/ucode-prediction"
        assert cell["violations"][0]["provenance"]["access"]
        assert prov_mod.shipment() is None  # drained

    def test_merge_cell_exports_groups_by_workload(self):
        machine = armed_machine(assemble_main(UAF_BODY))
        cells = [cell_export(machine, "lbm/insecure"),
                 cell_export(machine, "lbm/ucode-prediction"),
                 cell_export(machine, "mcf/insecure")]
        merged = merge_cell_exports(cells)
        assert set(merged) == {"lbm", "mcf"}
        assert merged["lbm"]["cells"] == 2
        assert merged["lbm"]["totals"]["capchecks"] \
            == 2 * machine.provenance.total("capchecks")


class TestEngineIntegration:
    def test_inline_engine_collects_and_writes(self, tmp_path):
        engine = EvalEngine(jobs=1, use_cache=False, provenance=True)
        engine.run_cells([CellSpec(workload="lbm",
                                   defense="ucode-prediction",
                                   max_instructions=50_000)])
        report = engine.write_provenance(str(tmp_path), "figX")
        assert report["cells"] == 1
        document = Path(report["json"]).read_text()
        assert '"schema": 1' in document
        assert "lbm/ucode-prediction" in document
        collapsed = Path(report["collapsed"]).read_text()
        assert collapsed.strip(), "no capability checks attributed"
        for line in collapsed.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) > 0

    def test_write_provenance_requires_flag(self):
        engine = EvalEngine(jobs=1, use_cache=False)
        with pytest.raises(ValueError):
            engine.write_provenance(".", "figX")
