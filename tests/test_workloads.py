"""Tests for the synthetic benchmark generators."""

import pytest

from repro.core import Chex86Machine, Variant
from repro.isa import assemble
from repro.pipeline.multicore import MulticoreMachine
from repro.sanitizer import instrument_program
from repro.workloads import (
    BENCHMARK_ORDER,
    PARSEC_NAMES,
    SPEC_NAMES,
    build,
    build_all,
)


class TestConstruction:
    def test_fourteen_benchmarks(self):
        assert len(BENCHMARK_ORDER) == 14
        assert len(SPEC_NAMES) == 8
        assert len(PARSEC_NAMES) == 6

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build("specfp-imaginary")

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_every_benchmark_assembles(self, name):
        workload = build(name, 1)
        program = assemble(workload.source, name=name)
        assert len(program) > 20

    def test_parsec_workloads_are_threaded(self):
        for name in PARSEC_NAMES:
            workload = build(name, 1)
            assert workload.threads == 4
            assert len(workload.entry_labels) == 4
            assert workload.entry_labels[0] == "main"

    def test_spec_workloads_single_threaded(self):
        for name in SPEC_NAMES:
            assert build(name, 1).threads == 1

    def test_scale_grows_work(self):
        small = build("perlbench", 1)
        # The static program is the same; scale grows loop bounds.
        big = build("perlbench", 3)
        assert "cmp r8" in small.source
        assert small.source != big.source


class TestExecution:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_spec_runs_clean_under_chex86(self, name):
        workload = build(name, 1)
        machine = Chex86Machine(assemble(workload.source, name=name),
                                variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=True)
        result = machine.run(max_instructions=800_000)
        assert result.halted, f"{name} did not finish"
        assert not result.flagged, f"{name} raised a false positive"

    def test_leela_false_positive_path(self):
        """The statically-linked-libstdc++ idiom is the paper's one false
        positive: a constant-address dereference of a benign global."""
        from repro.core import ViolationKind
        workload = build("leela", 1, libstdcxx_constant_deref=True)
        machine = Chex86Machine(assemble(workload.source, name="leela-fp"),
                                variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        result = machine.run(max_instructions=800_000)
        assert result.violations.count(ViolationKind.WILD_DEREFERENCE) == 1

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_spec_workloads_are_asan_compatible(self, name):
        """Workloads must respect the sanitizer's register conventions."""
        workload = build(name, 1)
        program = assemble(workload.source, name=name)
        sanitized, report = instrument_program(program)
        assert report.instrumented_accesses > 0

    def test_allocation_character_ordering(self):
        """Figure 3's qualitative ordering must be baked in."""
        counts = {}
        for name in ("xalancbmk", "gcc", "lbm", "deepsjeng"):
            workload = build(name, 1)
            machine = Chex86Machine(assemble(workload.source, name=name),
                                    variant=Variant.UCODE_PREDICTION,
                                    halt_on_violation=True)
            machine.run(max_instructions=800_000)
            counts[name] = machine.allocator.stats.total_allocs
        assert counts["xalancbmk"] > counts["gcc"] > counts["deepsjeng"]
        assert counts["lbm"] <= 2

    def test_mcf_has_large_live_set(self):
        workload = build("mcf", 1)
        machine = Chex86Machine(assemble(workload.source, name="mcf"),
                                variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=True)
        machine.run(max_instructions=800_000)
        stats = machine.allocator.stats
        assert stats.max_live == stats.total_allocs  # nothing freed

    @pytest.mark.parametrize("name", ["bodytrack", "swaptions"])
    def test_parsec_multicore_clean(self, name):
        workload = build(name, 1)
        runner = MulticoreMachine(workload, variant=Variant.UCODE_PREDICTION,
                                  halt_on_violation=True)
        result = runner.run(max_instructions_per_core=400_000)
        assert result.halted and not result.flagged
