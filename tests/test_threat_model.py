"""Threat-model boundary tests: what CHEx86 is — and is not — meant to catch.

Section III scopes the protection to object-granular temporal and spatial
safety in the heap and global data section.  These tests pin the boundary:
the in-scope cases must flag, and the explicitly out-of-scope cases must
*not* (silently "fixing" them would mean we built a different system).
"""

import pytest

from repro.core import Chex86Machine, Variant, ViolationKind
from repro.isa import Reg

from conftest import assemble_main, run_program


class TestInScope:
    def test_heap_object_granularity(self):
        """Overflow from one heap object into its neighbour: flagged."""
        result = run_program("""
            mov rdi, 32
            call malloc
            mov rbx, rax
            mov rdi, 32
            call malloc
            mov [rbx + 48], 1
        """)
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_global_data_section_protected(self):
        result = run_program("""
            mov rbx, [buf.addr]
            mov rcx, [rbx + 40]
        """, globals_asm=".global buf, 40\n")
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1

    def test_temporal_safety_is_permanent(self):
        """Use-after-free is caught even after the chunk is reused —
        the capability approach does not depend on quarantine distance."""
        result = run_program("""
            mov rdi, 64
            call malloc
            mov rbx, rax
            mov rdi, rax
            call free
            mov rdi, 64
            call malloc
            mov rcx, [rbx]
        """)
        assert result.violations.count(ViolationKind.USE_AFTER_FREE) == 1


class TestOutOfScope:
    def test_intra_object_overflow_not_flagged(self):
        """'Our threat model does not yet include attacks that exploit
        intra-object spatial errors (e.g., overflowing into an adjacent
        field within a struct).'"""
        result = run_program("""
            mov rdi, 64
            call malloc
            ; struct { char name[16]; int privileged; } at rax:
            mov [rax], 0x41414141
            mov [rax + 8], 0x41414141
            mov [rax + 16], 1       ; 'overflow' of name into privileged
            mov rbx, [rax + 16]
        """)
        assert not result.flagged

    def test_stack_buffers_untracked(self):
        """Stack allocations have no capabilities; stray stack accesses
        pass (the paper's granularity covers heap + global data)."""
        result = run_program("""
            mov rbx, rsp
            sub rbx, 256
            mov [rbx + 512], 1      ; wild-ish stack write
        """)
        assert not result.flagged

    def test_unregistered_allocator_not_tracked(self):
        """Memory from an unregistered allocation path (here: a raw
        pointer into the heap region that never went through malloc) is
        not of interest — no capability, no check."""
        program = assemble_main("""
            mov rbx, [pool.addr]
            mov rbx, [rbx]          ; reload pointer stored by host below
            mov rcx, [rbx + 8]
        """, globals_asm=".global pool, 16\n")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        # Simulate an unregistered allocator handing out memory: plant a
        # raw heap pointer in the pool slot before running.
        pool = next(g for g in program.globals if g.name == "pool")
        machine.memory.poke_word(pool.address, 0x1500_0000)
        result = machine.run()
        assert not result.flagged


class TestSpectreV1Argument:
    """Section III: the capability check is part of the same macro-op as
    the dereference, so a Spectre-v1 gadget cannot bypass it the way it
    bypasses a software bounds check — the check is injected at *decode*,
    before the branch outcome is known."""

    def test_checks_injected_regardless_of_branch_direction(self):
        # A bounds-checked dereference: the software check would be the
        # cmp/jae; CHEx86's capCheck is attached to the load itself.
        program = assemble_main("""
            mov rdi, 64
            call malloc
            mov rbx, rax
            mov rcx, 4              ; in-bounds index
            cmp rcx, 8
            jae skip
            mov rdx, [rbx + rcx*8]  ; the gadget load
        skip:
            nop
        """)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run()
        # The dereference got its capability check (injected at decode).
        assert machine.mcu.stats.capchecks >= 1

    def test_oob_index_trapped_by_capability_not_software_check(self):
        """Even with the software bounds check *removed* (the Spectre
        scenario is equivalent to it being bypassed), the capability check
        fires."""
        result = run_program("""
            mov rdi, 64
            call malloc
            mov rbx, rax
            mov rcx, 40             ; attacker-controlled index, way out
            mov rdx, [rbx + rcx*8]
        """)
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1
