"""Tests for the sweep-scope span layer and the trace collator.

Covers the :class:`SpanTracer` buffer semantics (nesting, bounded
buffers, spill-to-JSONL, destructive-but-idempotent drains), the clock
alignment the collator performs over multi-process shipments, the
Chrome ``trace_event`` schema validator, the engine integration
(spans + worker shipments + machine rings end to end), and round-trip
recovery of machine events from a merged trace.
"""

import json
import os

import pytest

from repro.eval.engine import CellSpec, EvalEngine
from repro.telemetry import collate as _shadowed  # noqa: F401  (function)
from repro.telemetry.collate import (
    MACHINE_TID_BASE,
    collate,
    load_chrome,
    machine_trace_events,
    validate_chrome_trace,
    write_chrome,
)
from repro.telemetry.spans import (
    SPILL_FILENAME,
    SpanTracer,
    TraceOptions,
)
from repro.telemetry import spans as spans_mod

BUDGET = 60_000


def spec(defense="insecure", **kwargs):
    kwargs.setdefault("max_instructions", BUDGET)
    return CellSpec(workload="lbm", defense=defense, **kwargs)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with no installed tracer."""
    spans_mod.uninstall()
    yield
    spans_mod.uninstall()


class TestTraceOptions:
    def test_defaults(self):
        options = TraceOptions()
        assert options.capacity == 65536
        assert options.machine_capacity == 4096

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceOptions(capacity=0)
        with pytest.raises(ValueError, match="machine ring"):
            TraceOptions(machine_capacity=-1)


class TestSpanTracer:
    def test_span_nesting_and_args(self):
        tracer = SpanTracer()
        with tracer.span("outer", cell="a"):
            with tracer.span("inner"):
                pass
            tracer.instant("tick", n=1)
        records = tracer.drain()
        assert [r["name"] for r in records] == ["inner", "tick", "outer"]
        outer = records[-1]
        assert outer["ph"] == "X"
        assert outer["args"] == {"cell": "a"}
        assert outer["dur_ns"] >= records[0]["dur_ns"]
        assert all(r["pid"] == os.getpid() for r in records)

    def test_end_merges_late_args_and_is_idempotent(self):
        tracer = SpanTracer()
        handle = tracer.begin("cell", attempt=1)
        tracer.end(handle, status="ok")
        tracer.end(handle, status="overwritten")  # ignored
        records = tracer.drain()
        assert len(records) == 1
        assert records[0]["args"] == {"attempt": 1, "status": "ok"}

    def test_explicit_lane_tid(self):
        tracer = SpanTracer()
        with tracer.span("cell", tid=7):
            pass
        tracer.instant("hit")  # thread-derived tid compresses to 0
        records = tracer.drain()
        assert records[0]["tid"] == 7
        assert records[1]["tid"] == 0

    def test_bounded_without_spill_drops_oldest(self):
        tracer = SpanTracer(capacity=8)
        for n in range(20):
            tracer.instant(f"i{n}")
        assert tracer.dropped > 0
        names = [r["name"] for r in tracer.drain()]
        assert "i19" in names          # newest survives
        assert "i0" not in names       # oldest dropped
        assert len(names) + tracer.dropped == 20

    def test_spill_to_jsonl(self, tmp_path):
        spill = tmp_path / "spans.jsonl"
        tracer = SpanTracer(capacity=4, spill_path=spill)
        for n in range(10):
            tracer.instant(f"i{n}")
        assert tracer.dropped == 0
        assert tracer.spilled >= 4
        lines = [json.loads(line) for line
                 in spill.read_text().splitlines()]
        assert lines[0]["name"] == "i0"
        # drain() returns spilled + buffered exactly once, in order.
        drained = tracer.drain()
        assert [r["name"] for r in drained] == [f"i{n}" for n in range(10)]
        assert tracer.drain() == []    # idempotent: nothing re-read
        assert spill.exists()          # the spill file itself survives

    def test_unwritable_spill_degrades_to_drop(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        tracer = SpanTracer(capacity=2,
                            spill_path=target / "spans.jsonl")
        for n in range(6):
            tracer.instant(f"i{n}")
        assert tracer.dropped >= 2

    def test_shipment_shape(self):
        tracer = SpanTracer(process_label="worker:lbm/insecure")
        tracer.instant("hello")
        shipment = tracer.shipment()
        assert shipment["clock"]["pid"] == os.getpid()
        assert shipment["clock"]["label"] == "worker:lbm/insecure"
        assert shipment["clock"]["wall_ns"] > 0
        assert [s["name"] for s in shipment["spans"]] == ["hello"]
        assert shipment["machines"] == []


class TestModuleHelpers:
    def test_maybe_is_noop_without_tracer(self):
        assert spans_mod.current() is None
        with spans_mod.maybe("anything") as handle:
            assert handle is None
        spans_mod.instant("ignored")  # must not raise

    def test_install_uninstall(self):
        tracer = SpanTracer()
        spans_mod.install(tracer)
        assert spans_mod.current() is tracer
        with spans_mod.maybe("real", cell="x"):
            pass
        assert spans_mod.uninstall() is tracer
        assert spans_mod.current() is None
        assert [r["name"] for r in tracer.drain()] == ["real"]

    def test_attach_machine_tracer_noop_unarmed(self):
        class Machine:
            def attach_tracer(self, ring):
                raise AssertionError("must not attach when unarmed")

        spans_mod.attach_machine_tracer(Machine(), "x")  # off entirely
        spans_mod.install(SpanTracer(), machine_capacity=0)
        spans_mod.attach_machine_tracer(Machine(), "x")  # armed w/o rings


class TestCollate:
    @staticmethod
    def _shipment(label, wall_ns, mono_ns, spans=(), machines=()):
        return {
            "schema": 1,
            "clock": {"pid": hash(label) % 1000 + 1,
                      "label": label,
                      "wall_ns": wall_ns, "mono_ns": mono_ns},
            "spans": list(spans),
            "machines": list(machines),
        }

    def test_clock_alignment_across_processes(self):
        # Two processes whose monotonic clocks disagree wildly but whose
        # wall anchors are 1 ms apart: the collator must order their
        # events by wall time, not by raw monotonic readings.
        parent = self._shipment("engine", wall_ns=1_000_000_000,
                                mono_ns=500)
        worker = self._shipment("worker", wall_ns=1_001_000_000,
                                mono_ns=9_000_000_000)
        parent["spans"].append({"ph": "i", "name": "first", "cat": "engine",
                                "start_ns": 500, "dur_ns": 0,
                                "pid": 1, "tid": 0, "args": {}})
        worker["spans"].append({"ph": "i", "name": "second",
                                "cat": "engine",
                                "start_ns": 9_000_000_000, "dur_ns": 0,
                                "pid": 2, "tid": 0, "args": {}})
        doc = collate([parent, worker])
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["name"] for e in events] == ["first", "second"]
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(1000.0)  # 1 ms in µs

    def test_process_metadata_emitted(self):
        doc = collate([self._shipment("engine", 10, 10),
                       self._shipment("worker:a", 10, 10)])
        names = {(e["pid"], e["args"]["name"])
                 for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert len(names) == 2
        assert validate_chrome_trace(doc) == []

    def test_machine_ring_becomes_swimlane(self):
        machine = {
            "label": "lbm/insecure", "start_ns": 1000, "end_ns": 2000,
            "cycles": 100, "emitted": 2, "dropped": 0,
            "events": [
                {"ts": 10, "kind": "capcheck", "pc": 0x400010, "ok": True},
                {"ts": 50, "kind": "squash", "pc": 0x400020,
                 "cause": "alias", "penalty": 15},
            ],
        }
        doc = collate([self._shipment("worker", 0, 0,
                                      machines=[machine])])
        machine_events = [e for e in doc["traceEvents"]
                          if e.get("cat") == "machine"]
        assert len(machine_events) == 2
        assert all(e["tid"] >= MACHINE_TID_BASE for e in machine_events)
        squash = [e for e in machine_events if e["name"] == "squash"][0]
        assert squash["ph"] == "X" and squash["dur"] > 0
        assert validate_chrome_trace(doc) == []
        # Round trip: the events are recoverable from the document.
        recovered = machine_trace_events(doc)
        assert [(e.ts, e.kind, e.pc) for e in recovered] == \
            [(10, "capcheck", 0x400010), (50, "squash", 0x400020)]
        assert recovered[1].fields["penalty"] == 15

    def test_write_and_load_round_trip(self, tmp_path):
        doc = collate([self._shipment("engine", 5, 5)])
        target = tmp_path / "trace.json"
        write_chrome(target, doc)
        loaded = load_chrome(target)
        assert loaded["traceEvents"] == doc["traceEvents"]

    def test_load_rejects_non_trace(self, tmp_path):
        target = tmp_path / "not-a-trace.json"
        target.write_text('{"metrics": {}}')
        with pytest.raises(ValueError):
            load_chrome(target)


class TestValidator:
    def test_flags_unbalanced_and_nonmonotonic(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "open", "pid": 1, "tid": 1, "ts": 5},
            {"ph": "i", "name": "back", "pid": 1, "tid": 1, "ts": 1},
            {"ph": "E", "pid": 1, "tid": 2, "ts": 9},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("monotonic" in p or "ts" in p for p in problems)
        assert any("E" in p or "unclosed" in p.lower() or "B" in p
                   for p in problems)

    def test_accepts_metadata_anywhere(self):
        doc = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "args": {"name": "x"}},
            {"ph": "X", "name": "s", "pid": 1, "tid": 0, "ts": 0,
             "dur": 2},
        ]}
        assert validate_chrome_trace(doc) == []


class TestEngineIntegration:
    def test_traced_supervised_sweep_merges_worker_shipments(
            self, tmp_path):
        engine = EvalEngine(jobs=2, cache_dir=str(tmp_path),
                            trace=TraceOptions(capacity=1024,
                                               machine_capacity=256))
        cells = [spec(), spec(defense="ucode-prediction")]
        engine.run_cells(cells, artifact="spantest")
        target = tmp_path / "trace.json"
        doc = engine.write_trace(target, label="spantest")
        assert validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events}
        assert os.getpid() in pids
        assert len(pids) >= 3          # parent + two workers
        names = {e["name"] for e in events if e.get("cat") == "engine"}
        assert {"engine.batch", "engine.cell",
                "engine.cache.write"} <= names
        assert any(e.get("cat") == "machine" for e in events)
        # Lane tids: the two concurrent cells get distinct swimlanes.
        lanes = {e["tid"] for e in events
                 if e["name"] == "engine.cell"}
        assert len(lanes) == 2

    def test_traced_inline_sweep(self, tmp_path):
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path),
                            trace=TraceOptions(capacity=1024,
                                               machine_capacity=0))
        engine.run_cells([spec()])
        doc = engine.write_trace(tmp_path / "trace.json")
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "worker.cell" in names  # inline compute is spanned too

    def test_untraced_engine_refuses_write_trace(self, tmp_path):
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path))
        assert engine.spans is None
        with pytest.raises(ValueError, match="tracing was not enabled"):
            engine.write_trace(tmp_path / "trace.json")

    def test_parent_spill_lands_next_to_journal(self, tmp_path):
        engine = EvalEngine(jobs=1, cache_dir=str(tmp_path),
                            trace=TraceOptions(capacity=2))
        engine.run_cells([spec()])
        spill = tmp_path / SPILL_FILENAME
        assert spill.exists()
        assert engine.spans.spilled > 0
        # And the spilled records still reach the merged trace once.
        doc = engine.write_trace(tmp_path / "trace.json")
        probe_count = sum(1 for e in doc["traceEvents"]
                          if e["name"] == "engine.cache.probe")
        assert probe_count == 1
