"""Tests for structured metrics diffing (``repro metrics diff``)."""

import json

import pytest

from repro.telemetry.diffs import (
    diff_snapshots,
    is_ratio_like,
    load_metrics,
)


class TestRatioHeuristic:
    def test_named_ratios(self):
        assert is_ratio_like("cache.cap.miss_rate", 0.1, 5.0)
        assert is_ratio_like("predictor.accuracy", 2.0, 3.0)
        assert is_ratio_like("frontend.coverage", 0.9, 0.8)
        assert is_ratio_like("uop.expansion", 1.4, 1.5)

    def test_counters_are_not_ratios(self):
        assert not is_ratio_like("machine.instructions", 100, 200)
        assert not is_ratio_like("mcu.injected_uops", 3, 4)

    def test_bounded_non_integer_values_behave_like_ratios(self):
        assert is_ratio_like("some.opaque", 0.25, 0.75)
        assert not is_ratio_like("some.opaque", 0.0, 1.0)  # both integral
        assert not is_ratio_like("some.opaque", 0.5, 7.0)  # unbounded


class TestDiff:
    def test_identical(self):
        diff = diff_snapshots({"a": 1.0}, {"a": 1.0})
        assert diff.identical and diff.clean
        assert diff.unchanged == 1

    def test_added_removed_break_clean(self):
        diff = diff_snapshots({"a": 1, "b": 2}, {"a": 1, "c": 3})
        assert diff.added == {"c": 3.0}
        assert diff.removed == {"b": 2.0}
        assert not diff.clean

    def test_tolerance_judged_relatively_for_counters(self):
        diff = diff_snapshots({"machine.cycles": 1000},
                              {"machine.cycles": 1005})
        (delta,) = diff.changed
        assert not delta.ratio_like
        assert delta.comparand == pytest.approx(0.005)
        assert diff_snapshots({"machine.cycles": 1000},
                              {"machine.cycles": 1005},
                              tolerance=0.01).clean

    def test_tolerance_judged_absolutely_for_ratios(self):
        a = {"cap.miss_rate": 0.93}
        b = {"cap.miss_rate": 0.95}
        (delta,) = diff_snapshots(a, b).changed
        assert delta.ratio_like
        assert delta.comparand == pytest.approx(0.02)
        assert diff_snapshots(a, b, tolerance=0.05).clean
        assert not diff_snapshots(a, b, tolerance=0.01).clean

    def test_zero_to_nonzero_is_out_of_tolerance(self):
        diff = diff_snapshots({"violations": 0}, {"violations": 3},
                              tolerance=0.5)
        (delta,) = diff.changed
        assert delta.rel_delta == 1.0  # judged on the side that exists
        assert not diff.clean

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            diff_snapshots({}, {}, tolerance=-0.1)

    def test_format_text_names_the_mover(self):
        text = diff_snapshots({"a.count": 1, "b": 2},
                              {"a.count": 9, "b": 2}).format_text()
        assert "a.count: 1 -> 9" in text
        assert text.endswith("1 unchanged")
        assert text.splitlines()[-1].startswith("DIFF:")

    def test_to_dict_json_serialisable(self):
        document = json.loads(json.dumps(
            diff_snapshots({"a": 1}, {"a": 2}).to_dict()))
        assert document["clean"] is False
        assert document["changed"][0]["name"] == "a"


class TestLoadMetrics:
    def test_write_snapshot_document(self, tmp_path):
        from repro.telemetry import write_snapshot

        target = tmp_path / "snap.json"
        write_snapshot(target, {"m.count": 3, "m.rate": 0.5},
                       meta={"workload": "mcf"})
        assert load_metrics(target) == {"m.count": 3.0, "m.rate": 0.5}

    def test_engine_sidecar_document(self, tmp_path):
        target = tmp_path / "sidecar.json"
        target.write_text(json.dumps({
            "engine": {"cells_computed": 2, "label": "ignored"},
            "cells": [
                {"workload": "mcf", "defense": "insecure",
                 "metrics": {"machine.cycles": 100}},
                "not-a-cell",
            ],
        }))
        flat = load_metrics(target)
        assert flat == {"cells_computed": 2.0,
                        "mcf/insecure.machine.cycles": 100.0}

    def test_bare_snapshot(self, tmp_path):
        target = tmp_path / "bare.json"
        target.write_text(json.dumps({"a": 1, "b": 2.5, "skip": "text",
                                      "flag": True}))
        assert load_metrics(target) == {"a": 1.0, "b": 2.5}

    def test_errors(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_metrics(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_metrics(bad)
        empty = tmp_path / "empty.json"
        empty.write_text('{"only": "strings"}')
        with pytest.raises(ValueError, match="no numeric metrics"):
            load_metrics(empty)
