"""Fault-injection tests for the evaluation engine.

Under injected crash / hang / corrupt-cache / transient-exception
faults, the engine must retry per spec, quarantine bad cache entries,
and converge on artifacts byte-identical to a fault-free run; an
interrupted sweep resumed with ``resume=True`` recomputes only the
incomplete cells (asserted via the journal/cache hit counters).
"""

import json

import pytest

from repro.eval import fig6
from repro.eval.engine import (
    CellFailure,
    CellSpec,
    EvalEngine,
    SweepJournal,
    result_digest,
)
from repro.eval.faults import ENV_FAULT_SPEC, FaultPlan, FaultRule

BUDGET = 60_000
BACKOFF = 0.05


def spec(workload="lbm", defense="insecure", **kwargs):
    kwargs.setdefault("max_instructions", BUDGET)
    return CellSpec(workload=workload, defense=defense, **kwargs)


def engine(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path))
    kwargs.setdefault("retry_backoff", BACKOFF)
    return EvalEngine(**kwargs)


@pytest.fixture(scope="module")
def fault_free():
    """The ground-truth results every faulted run must reproduce."""
    clean = EvalEngine(jobs=1, use_cache=False)
    cells = [spec(), spec(defense="ucode-prediction")]
    return {cell: result for cell, result in clean.run_cells(cells).items()}


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("crash:lbm/insecure@2, hang:mcf/*, transient")
        assert plan.rules == [
            FaultRule("crash", "lbm/insecure", 2),
            FaultRule("hang", "mcf/*", 1),
            FaultRule("transient", "*", 1),
        ]
        assert FaultPlan.parse(plan.spec()).rules == plan.rules

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("meltdown:*")

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            FaultPlan.parse("crash:*@zero")
        with pytest.raises(ValueError, match="count"):
            FaultPlan.parse("crash:*@0")

    def test_count_limits_firings_per_label(self):
        plan = FaultPlan.parse("crash:*@2")
        assert plan.worker_fault("a/b") == "crash"
        assert plan.worker_fault("a/b") == "crash"
        assert plan.worker_fault("a/b") is None
        # Other labels have their own budget.
        assert plan.worker_fault("c/d") == "crash"

    def test_target_pattern(self):
        plan = FaultPlan.parse("hang:mcf/*")
        assert plan.worker_fault("lbm/insecure") is None
        assert plan.worker_fault("mcf/ucode-prediction") == "hang"

    def test_cache_faults_separate_from_worker_faults(self):
        plan = FaultPlan.parse("corrupt-cache:*")
        assert plan.worker_fault("a/b") is None
        assert plan.cache_fault("a/b")
        assert not plan.cache_fault("a/b")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(ENV_FAULT_SPEC, "transient:lbm/*")
        plan = FaultPlan.from_env()
        assert plan.rules == [FaultRule("transient", "lbm/*", 1)]

    def test_engine_picks_up_env_spec(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_FAULT_SPEC, "transient:*@1")
        faulted = engine(tmp_path, jobs=2)
        assert faulted.fault_plan.spec() == "transient:*"


class TestTransientFaults:
    def test_retried_and_identical(self, tmp_path, fault_free):
        faulted = engine(tmp_path, jobs=2,
                         fault_plan=FaultPlan.parse("transient:*@1"))
        results = faulted.run_cells(list(fault_free))
        assert results == fault_free
        assert faulted.stats.retried == len(fault_free)
        assert faulted.stats.transient_errors == len(fault_free)
        snapshot = faulted.telemetry.snapshot()
        assert snapshot["engine.cells_retried"] == len(fault_free)
        assert snapshot["engine.transient_errors"] == len(fault_free)

    def test_supervised_even_with_one_job(self, tmp_path, fault_free):
        """A fault plan forces supervision so the injected fault cannot
        take down the engine's own process."""
        faulted = engine(tmp_path, jobs=1,
                         fault_plan=FaultPlan.parse("transient:lbm/*@1"))
        assert faulted.get(spec()) == fault_free[spec()]
        assert faulted.stats.retried == 1


class TestCrashFaults:
    def test_crash_fails_only_its_cell(self, tmp_path, fault_free):
        faulted = engine(tmp_path, jobs=2,
                         fault_plan=FaultPlan.parse("crash:lbm/insecure@1"))
        results = faulted.run_cells(list(fault_free))
        assert results == fault_free
        assert faulted.stats.crashed == 1
        assert faulted.stats.retried == 1
        assert faulted.telemetry.snapshot()["engine.cells_crashed"] == 1

    def test_retries_exhausted_raises_cell_failure(self, tmp_path):
        faulted = engine(tmp_path, jobs=2, max_retries=1,
                         fault_plan=FaultPlan.parse("crash:*@99"))
        with pytest.raises(CellFailure, match="lbm/insecure"):
            faulted.get(spec())
        assert faulted.stats.failed == 1
        journal = SweepJournal(tmp_path)
        events = [json.loads(line) for line
                  in journal.path.read_text().splitlines()]
        # The full attempt history is journaled: batch announcement,
        # one start per dispatch, a retry, and the terminal failure.
        kinds = [e["event"] for e in events]
        assert kinds == ["batch", "start", "retry", "start", "failed"]
        assert events[-1]["label"] == "lbm/insecure"
        assert [e["attempt"] for e in events if e["event"] == "start"] \
            == [1, 2]
        assert all(isinstance(e["ts"], float) for e in events)

    def test_other_cells_survive_a_permanent_failure(self, tmp_path,
                                                     fault_free):
        faulted = engine(tmp_path, jobs=2, max_retries=0,
                         fault_plan=FaultPlan.parse("crash:lbm/insecure@99"))
        good = spec(defense="ucode-prediction")
        with pytest.raises(CellFailure):
            faulted.run_cells([spec(), good])
        # The healthy cell completed, was cached, and is journaled done —
        # a resume run recomputes only the failure.
        assert faulted.memoized()[good] == fault_free[good]
        resumed = engine(tmp_path, jobs=2, resume=True)
        results = resumed.run_cells([spec(), good])
        assert results == fault_free
        assert resumed.stats.computed == 1
        assert resumed.stats.journal_hits == 1


class TestHangFaults:
    def test_hung_worker_killed_and_retried(self, tmp_path, fault_free):
        faulted = engine(tmp_path, jobs=2, cell_timeout=3.0,
                         fault_plan=FaultPlan.parse("hang:lbm/insecure@1"))
        results = faulted.run_cells(list(fault_free))
        assert results == fault_free
        assert faulted.stats.timed_out == 1
        assert faulted.stats.retried == 1
        assert faulted.telemetry.snapshot()["engine.cells_timed_out"] == 1


class TestCorruptCache:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path,
                                                      fault_free):
        writer = engine(tmp_path, jobs=1,
                        fault_plan=FaultPlan.parse("corrupt-cache:*@1"))
        writer.get(spec())
        entry = tmp_path / spec().cache_filename()
        with pytest.raises(ValueError):
            json.loads(entry.read_text())  # really corrupt on disk

        reader = engine(tmp_path, jobs=1)
        assert reader.get(spec()) == fault_free[spec()]
        assert reader.stats.quarantined == 1
        assert reader.stats.computed == 1 and reader.stats.cached == 0
        assert reader.telemetry.snapshot()["engine.cache_quarantined"] == 1
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [spec().cache_filename()]
        # The recompute healed the cache: a third engine hits cleanly.
        healed = engine(tmp_path, jobs=1)
        assert healed.get(spec()) == fault_free[spec()]
        assert healed.stats.cached == 1 and healed.stats.quarantined == 0

    def test_hash_mismatch_detected(self, tmp_path, fault_free):
        """A bit-rotted but well-formed record fails hash verification."""
        writer = engine(tmp_path, jobs=1)
        writer.get(spec())
        entry = tmp_path / spec().cache_filename()
        record = json.loads(entry.read_text())
        record["result"]["benchmark_run"]["cycles"] += 1
        entry.write_text(json.dumps(record))
        assert record["sha256"] != result_digest(record["result"])

        reader = engine(tmp_path, jobs=1)
        assert reader.get(spec()) == fault_free[spec()]
        assert reader.stats.quarantined == 1

    def test_stale_version_is_a_plain_miss(self, tmp_path):
        """An old-version record is legitimate, not corruption: it is
        recomputed silently, never quarantined."""
        writer = engine(tmp_path, jobs=1)
        writer.get(spec())
        entry = tmp_path / spec().cache_filename()
        record = json.loads(entry.read_text())
        record["version"] = "0.0.0-previous"
        entry.write_text(json.dumps(record))
        reader = engine(tmp_path, jobs=1)
        reader.get(spec())
        assert reader.stats.computed == 1
        assert reader.stats.quarantined == 0
        assert not (tmp_path / "quarantine").exists()


class TestInlineRetry:
    def test_inline_path_retries_transient_exceptions(self, tmp_path,
                                                      monkeypatch,
                                                      fault_free):
        """jobs=1 without a fault plan computes inline; a flaky
        exception still gets the retry/backoff treatment in-process."""
        from repro.eval import engine as engine_module

        real_worker = engine_module._cell_worker
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("injected flaky I/O")
            return real_worker(payload)

        monkeypatch.setattr(engine_module, "_cell_worker", flaky)
        inline = engine(tmp_path, jobs=1)
        assert inline.get(spec()) == fault_free[spec()]
        assert calls["n"] == 2
        assert inline.stats.retried == 1
        assert inline.stats.transient_errors == 1

    def test_inline_path_exhausts_retries(self, tmp_path, monkeypatch):
        from repro.eval import engine as engine_module

        def always_broken(payload):
            raise OSError("injected permanent failure")

        monkeypatch.setattr(engine_module, "_cell_worker", always_broken)
        inline = engine(tmp_path, jobs=1, max_retries=1)
        with pytest.raises(CellFailure, match="injected permanent"):
            inline.get(spec())
        assert inline.stats.retried == 1
        assert inline.stats.failed == 1


class TestResume:
    CELLS = ("insecure", "ucode-prediction", "hardware-only")

    def test_resumed_sweep_recomputes_only_incomplete_cells(self, tmp_path):
        partial = engine(tmp_path, jobs=1)
        partial.run_cells([spec(defense=d) for d in self.CELLS[:2]],
                          artifact="fig6")
        resumed = engine(tmp_path, jobs=1, resume=True)
        resumed.run_cells([spec(defense=d) for d in self.CELLS],
                          artifact="fig6")
        assert resumed.stats.journal_hits == 2
        assert resumed.stats.computed == 1
        assert resumed.stats.cached == 2
        assert resumed.telemetry.snapshot()["engine.journal_hits"] == 2

    def test_fresh_sweep_truncates_the_journal(self, tmp_path):
        first = engine(tmp_path, jobs=1)
        first.run_cells([spec(defense=d) for d in self.CELLS])
        fresh = engine(tmp_path, jobs=1)
        fresh.run_cells([spec()])
        journal = SweepJournal(tmp_path)
        events = [json.loads(line) for line
                  in journal.path.read_text().splitlines()]
        # Only the fresh sweep's events survive: its batch note and one
        # cache-served done — the first sweep's three cells are gone.
        assert [e["event"] for e in events] == ["batch", "done"]
        assert events[-1]["source"] == "cached"
        assert journal.done_keys() == {spec().cache_key()}

    def test_journal_tolerates_partial_trailing_line(self, tmp_path):
        done = engine(tmp_path, jobs=1)
        done.run_cells([spec()])
        journal = SweepJournal(tmp_path)
        with journal.path.open("a") as handle:
            handle.write('{"event": "done", "key": "trunc')  # killed mid-write
        assert journal.done_keys() == {spec().cache_key()}

    def test_resume_without_cache_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="resume requires"):
            EvalEngine(jobs=1, use_cache=False, resume=True)

    def test_journal_records_artifact_and_attempts(self, tmp_path):
        faulted = engine(tmp_path, jobs=2,
                         fault_plan=FaultPlan.parse("transient:*@1"))
        faulted.run_cells([spec()], artifact="fig6")
        events = [json.loads(line) for line
                  in SweepJournal(tmp_path).path.read_text().splitlines()]
        assert events[-1]["event"] == "done"
        assert events[-1]["artifact"] == "fig6"
        assert events[-1]["attempts"] == 2


class TestArtifactsByteIdentical:
    def test_faulted_fig6_renders_identically(self, tmp_path):
        """The acceptance bar: with crash + hang + transient + corrupt
        cache faults all injected, a figure renders byte-identically to
        a fault-free serial run."""
        benchmarks = ("lbm",)
        clean = fig6.run(scale=1, benchmarks=benchmarks,
                         max_instructions=BUDGET,
                         engine=EvalEngine(jobs=1, use_cache=False))
        plan = FaultPlan.parse("crash:lbm/insecure@1,"
                               "hang:lbm/ucode-prediction@1,"
                               "transient:lbm/asan@1,"
                               "corrupt-cache:lbm/hardware-only@1")
        faulted_engine = engine(tmp_path, jobs=2, cell_timeout=5.0,
                                fault_plan=plan)
        faulted = fig6.run(scale=1, benchmarks=benchmarks,
                           max_instructions=BUDGET, engine=faulted_engine)
        assert faulted.format_text() == clean.format_text()
        assert faulted.runs == clean.runs
        assert faulted_engine.stats.crashed == 1
        assert faulted_engine.stats.timed_out == 1
        assert faulted_engine.stats.transient_errors == 1
