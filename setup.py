"""Legacy setup shim: enables ``pip install -e .`` on offline toolchains
that lack the ``wheel`` package needed for PEP 660 editable builds."""

from setuptools import setup

setup()
