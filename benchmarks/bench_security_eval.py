"""Regenerates the Section VII-A security evaluation: RIPE (850 attack
forms), the ASan test-suite analogue, and How2Heap (18 scenarios)."""

from conftest import once

from repro.core.violations import ViolationKind
from repro.eval import security


def test_security_all_suites(benchmark):
    result = once(benchmark, lambda: security.run(ripe_limit=None))
    print("\n" + result.format_text())

    # Paper headline: every exploit in every suite is thwarted.
    assert result.all_flagged()
    assert result.no_hijack_under_chex86()

    # Suite sizes match the paper: 850 RIPE forms, 18 How2Heap exploits.
    assert result.chex86["RIPE"].total == 850
    assert result.chex86["How2Heap"].total == 18

    # On the insecure baseline the attacks actually work (controls).
    assert result.insecure["RIPE"].hijacked >= 800   # off-by-ones excluded
    assert result.insecure["How2Heap"].hijacked == 18

    # The paper's per-anchor counts: RIPE is all out-of-bounds; How2Heap
    # spans UAF / double free / invalid free / OOB; the ASan suite
    # includes the two heap-spray (resource exhaustion) cases.
    ripe_kinds = result.chex86["RIPE"].kinds_histogram()
    assert set(ripe_kinds) == {ViolationKind.OUT_OF_BOUNDS}
    h2h_kinds = result.chex86["How2Heap"].kinds_histogram()
    assert ViolationKind.USE_AFTER_FREE in h2h_kinds
    assert ViolationKind.DOUBLE_FREE in h2h_kinds
    assert ViolationKind.INVALID_FREE in h2h_kinds
    asan_kinds = result.chex86["ASan suite"].kinds_histogram()
    assert asan_kinds.get(ViolationKind.HEAP_SPRAY, 0) == 2

    benchmark.extra_info.update({
        "ripe_detected": result.chex86["RIPE"].detected,
        "how2heap_detected": result.chex86["How2Heap"].detected,
        "asan_suite_detected": result.chex86["ASan suite"].detected,
    })
