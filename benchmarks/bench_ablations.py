"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the contribution of individual
CHEx86 mechanisms: context-sensitive (surgical) check injection, the
predictor blacklist, the alias victim cache, and the TLB alias-hosting bit.
"""

from conftest import BUDGET, SCALE, once

from repro.core import Chex86Machine, Variant
from repro.isa import assemble
from repro.workloads import build


def _run_machine(name, **kwargs):
    workload = build(name, SCALE)
    machine = Chex86Machine(assemble(workload.source, name=name),
                            variant=Variant.UCODE_PREDICTION,
                            halt_on_violation=False, **kwargs)
    result = machine.run(max_instructions=BUDGET)
    return machine, result


def test_ablation_context_sensitivity(benchmark):
    """Surgical (critical-region-only) checks cut capCheck volume while
    allocations remain fully tracked."""

    def run():
        full_machine, full = _run_machine("xalancbmk")
        surgical_machine, surgical = _run_machine(
            "xalancbmk", critical_ranges=[(0, 1)])
        return full_machine, full, surgical_machine, surgical

    full_machine, full, surgical_machine, surgical = once(benchmark, run)
    assert surgical_machine.mcu.stats.capchecks == 0
    assert surgical_machine.mcu.stats.capchecks_suppressed_context > 0
    assert full_machine.mcu.stats.capchecks > 0
    # Allocations are still tracked outside critical regions.
    assert (surgical_machine.captable.stats.generated
            == full_machine.captable.stats.generated)
    # Fewer injected uops -> no more cycles than the fully checked run.
    assert surgical.uops < full.uops
    print(f"\ncontext-sensitive: {full.uops - surgical.uops} uops saved "
          f"({full_machine.mcu.stats.capchecks} checks suppressed), "
          f"cycles {full.cycles} -> {surgical.cycles}")


def test_ablation_predictor_blacklist(benchmark):
    """The blacklist keeps data loads out of the reload predictor."""

    def run():
        machine, _ = _run_machine("perlbench")
        return machine

    machine = once(benchmark, run)
    stats = machine.reload_predictor.stats
    # Compute-phase stack reloads are data loads: the blacklist filters
    # them instead of letting them thrash the stride table.
    assert stats.blacklist_filtered > 0
    assert stats.accuracy > 0.85
    print(f"\nblacklist filtered {stats.blacklist_filtered} of "
          f"{stats.lookups} lookups; accuracy {stats.accuracy:.1%}")


def test_ablation_victim_cache(benchmark):
    """The 32-entry victim cache absorbs alias-cache conflict misses."""
    from repro.pipeline.config import DEFAULT_CONFIG

    def run():
        with_victim_machine, _ = _run_machine("mcf")
        without_machine, _ = _run_machine(
            "mcf", config=DEFAULT_CONFIG.with_(alias_victim_entries=0))
        return with_victim_machine, without_machine

    with_victim, without = once(benchmark, run)
    rate_with = with_victim.alias_cache.stats.miss_rate
    rate_without = without.alias_cache.stats.miss_rate
    assert rate_with <= rate_without + 0.01
    print(f"\nalias miss rate with victim: {rate_with:.2%}, "
          f"without: {rate_without:.2%}")


def test_ablation_tlb_alias_hosting_bit(benchmark):
    """The alias-hosting bit filters shadow alias-table walks for pages
    that never hosted a spilled pointer."""

    def run():
        machine, _ = _run_machine("perlbench")
        return machine

    machine = once(benchmark, run)
    assert machine.tlb.stats.alias_walks_filtered > 0
    print(f"\nTLB alias-hosting bit filtered "
          f"{machine.tlb.stats.alias_walks_filtered} walks "
          f"({machine.tlb.hosting_pages} hosting pages)")
