#!/usr/bin/env python
"""Hot-loop throughput microbenchmark: simulated MIPS of the step loop.

Measures how many simulated instructions per wall-clock second the
simulator sustains on three representative workloads (a pointer-chasing
SPEC analogue, a branchy SPEC analogue, and a PARSEC analogue) under the
default prediction-driven variant, and writes the results to
``BENCH_hotloop.json``.  This is the perf-trajectory seed for the
decoded-block fast path and the flat timing scoreboard: CI runs it at
scale 1 and fails when the aggregate simulated-MIPS regresses more than
``--max-regression`` against the committed baseline file.

The timer wraps *only* ``Chex86Machine.run_quantum`` — workload
generation and assembly are front-end costs paid once per program, not
hot-loop throughput.  Standalone usage::

    PYTHONPATH=src python benchmarks/bench_hotloop.py \
        --baseline benchmarks/bench_hotloop_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import __version__  # noqa: E402
from repro.core.machine import Chex86Machine  # noqa: E402
from repro.core.variants import Variant  # noqa: E402
from repro.isa.assembler import assemble  # noqa: E402
from repro.telemetry import EventTracer, write_snapshot  # noqa: E402
from repro.workloads import build  # noqa: E402

#: The three representative workloads (SPEC pointer-heavy, SPEC branchy,
#: PARSEC numeric) the trajectory tracks.
WORKLOADS = ("mcf", "deepsjeng", "blackscholes")

DEFAULT_OUT = "BENCH_hotloop.json"
DEFAULT_METRICS_OUT = "BENCH_hotloop_metrics.json"
DEFAULT_BASELINE = "benchmarks/bench_hotloop_baseline.json"


def measure(name: str, scale: int, budget: int, repeats: int,
            telemetry: bool = False, provenance: bool = False,
            metrics_out: str = None) -> dict:
    """Best-of-``repeats`` stepping throughput for one workload.

    ``telemetry=True`` attaches the event tracer and per-quantum
    snapshotting, ``provenance=True`` arms the provenance recorder
    (forcing exact per-instruction replay) — the *enabled*-path
    overhead measurements; the regression gate only ever reads the
    default (disabled) runs.
    """
    workload = build(name, scale)
    program = assemble(workload.source, name=workload.name)
    best_mips = 0.0
    instructions = cycles = 0
    for _ in range(repeats):
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        if telemetry:
            machine.attach_tracer(EventTracer())
            machine.enable_quantum_metrics()
        if provenance:
            machine.enable_provenance()
        started = time.perf_counter()
        machine.run_quantum(budget)
        seconds = time.perf_counter() - started
        instructions = machine.instructions
        cycles = machine.timing.finish().cycles
        mips = instructions / seconds / 1e6 if seconds > 0 else 0.0
        if mips > best_mips:
            best_mips = mips
    if metrics_out:
        write_snapshot(metrics_out, machine.metrics_snapshot(),
                       meta={"benchmark": "hotloop", "workload": name,
                             "scale": scale, "budget": budget})
    counters = machine.phase_counters()
    covered = counters["frontend.superblock_instructions"]
    bailouts_per_kilo = (1000.0 * counters["frontend.superblock_bailouts"]
                         / instructions if instructions else 0.0)
    return {
        "workload": name,
        "instructions": instructions,
        "cycles": cycles,
        "simulated_mips": round(best_mips, 4),
        "superblock_coverage": round(
            covered / instructions if instructions else 0.0, 4),
        "superblock_bailouts_per_kinstr": round(bailouts_per_kilo, 4),
    }


def aggregate_mips(results: list) -> float:
    """Aggregate throughput: total instructions at each workload's rate.

    The instruction-weighted harmonic-style aggregate (total instructions
    over total time) keeps one fast workload from masking a regression in
    a slow one.
    """
    total_instructions = sum(r["instructions"] for r in results)
    total_seconds = sum(
        r["instructions"] / (r["simulated_mips"] * 1e6)
        for r in results if r["simulated_mips"] > 0)
    if not total_seconds:
        return 0.0
    return total_instructions / total_seconds / 1e6


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale (default 1, the CI size)")
    parser.add_argument("--budget", type=int, default=2_000_000,
                        help="instruction budget per run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per workload (best is kept)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--metrics-out", default=DEFAULT_METRICS_OUT,
                        help="telemetry snapshot of the last instrumented "
                             f"run (default {DEFAULT_METRICS_OUT})")
    parser.add_argument("--no-telemetry-bench", action="store_true",
                        help="skip the telemetry-enabled overhead pass")
    parser.add_argument("--no-provenance-bench", action="store_true",
                        help="skip the provenance-armed overhead pass")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to compare against "
                             f"(e.g. {DEFAULT_BASELINE})")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="fail when aggregate simulated-MIPS drops by "
                             "more than this fraction vs the baseline "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    results = []
    for name in WORKLOADS:
        record = measure(name, args.scale, args.budget, args.repeats)
        results.append(record)
        print(f"{name:14s} {record['instructions']:>9,} instr  "
              f"{record['cycles']:>9,} cycles  "
              f"{record['simulated_mips']:.4f} simulated-MIPS  "
              f"{record['superblock_coverage']:.2%} superblock coverage  "
              f"{record['superblock_bailouts_per_kinstr']:.2f} "
              f"bailouts/kinstr")

    aggregate = round(aggregate_mips(results), 4)
    report = {
        "version": __version__,
        "scale": args.scale,
        "budget": args.budget,
        "workloads": results,
        "aggregate_simulated_mips": aggregate,
    }

    if not args.no_telemetry_bench:
        # Telemetry-*enabled* overhead trajectory (tracer attached +
        # per-quantum snapshots).  Informational only: the regression
        # gate below compares the default disabled-path aggregate.
        enabled = []
        for name in WORKLOADS:
            record = measure(name, args.scale, args.budget, args.repeats,
                             telemetry=True,
                             metrics_out=args.metrics_out)
            enabled.append(record)
            print(f"{name:14s} {record['simulated_mips']:.4f} "
                  f"simulated-MIPS with telemetry enabled")
        enabled_aggregate = round(aggregate_mips(enabled), 4)
        overhead = (1.0 - enabled_aggregate / aggregate) if aggregate else 0.0
        report["telemetry"] = {
            "workloads": enabled,
            "aggregate_simulated_mips": enabled_aggregate,
            "overhead_fraction": round(overhead, 4),
        }
        print(f"telemetry: {enabled_aggregate:.4f} simulated-MIPS enabled "
              f"({overhead:.1%} overhead) -> {args.metrics_out}")

    if not args.no_provenance_bench:
        # Provenance-*armed* overhead trajectory (recorder enabled, so
        # superblock replay bails out to exact stepping).  Informational
        # only, like the telemetry pass: the gate reads the default runs.
        armed = []
        for name in WORKLOADS:
            record = measure(name, args.scale, args.budget, args.repeats,
                             provenance=True)
            armed.append(record)
            print(f"{name:14s} {record['simulated_mips']:.4f} "
                  f"simulated-MIPS with provenance armed")
        armed_aggregate = round(aggregate_mips(armed), 4)
        prov_overhead = (1.0 - armed_aggregate / aggregate) \
            if aggregate else 0.0
        report["provenance"] = {
            "workloads": armed,
            "aggregate_simulated_mips": armed_aggregate,
            "overhead_fraction": round(prov_overhead, 4),
        }
        # Record the armed-pass overhead in the metrics sidecar's meta
        # so BENCH_hotloop_metrics.json carries the full overhead story.
        metrics_path = Path(args.metrics_out)
        if metrics_path.exists():
            snapshot = json.loads(metrics_path.read_text())
            snapshot.setdefault("meta", {})["provenance_overhead_fraction"] \
                = round(prov_overhead, 4)
            metrics_path.write_text(json.dumps(snapshot, indent=2,
                                               sort_keys=True) + "\n")
        print(f"provenance: {armed_aggregate:.4f} simulated-MIPS armed "
              f"({prov_overhead:.1%} overhead)")

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"aggregate: {aggregate:.4f} simulated-MIPS -> {args.out}")

    if args.baseline:
        try:
            baseline = json.loads(Path(args.baseline).read_text())
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline {args.baseline!r}: {error}",
                  file=sys.stderr)
            return 2
        reference = float(baseline.get("aggregate_simulated_mips", 0.0))
        floor = reference * (1.0 - args.max_regression)
        print(f"baseline:  {reference:.4f} simulated-MIPS "
              f"(floor {floor:.4f} at -{args.max_regression:.0%})")
        if reference > 0 and aggregate < floor:
            print(f"FAIL: aggregate {aggregate:.4f} < floor {floor:.4f}",
                  file=sys.stderr)
            return 1
        print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
