"""Regenerates Table IV: comparison with prior memory-safety techniques,
with the CHEx86 row measured live on this reproduction."""

from conftest import BUDGET, SCALE, once

from repro.eval import table4


def test_table4_comparison(benchmark, engine):
    result = once(benchmark, lambda: table4.run(scale=SCALE,
                                                max_instructions=BUDGET,
                                                engine=engine))
    print("\n" + result.format_text())

    # The qualitative claims the paper cites the table for.
    claims = result.claims()
    assert all(claims.values()), claims

    # The measured CHEx86 row: average slowdown in the paper's regime
    # (14% published; we accept anything clearly below software schemes).
    assert 0 <= result.measured_average_pct < 30
    assert result.measured_worst_pct < 60

    # Rows present: 8 prior techniques + paper CHEx86 + measured CHEx86.
    assert len(result.rows) == 10
    chex_rows = [r for r in result.rows if r.proposal.startswith("CHEx86")]
    assert all(r.temporal_safety and r.spatial_safety
               and r.binary_compat == "yes" for r in chex_rows)

    benchmark.extra_info.update({
        "measured_avg_pct": round(result.measured_average_pct, 1),
        "measured_worst_pct": round(result.measured_worst_pct, 1),
    })
