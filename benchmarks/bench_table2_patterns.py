"""Regenerates Table II: temporal pointer access patterns."""

from conftest import SCALE, once

from repro.analysis.patterns import TABLE2_EXAMPLES, Pattern, classify
from repro.eval import table2


def test_table2_temporal_patterns(benchmark, engine):
    result = once(benchmark, lambda: table2.run(scale=SCALE,
                                                max_instructions=400_000,
                                                engine=engine))
    print("\n" + result.format_text())

    # The classifier reproduces every example row of Table II itself.
    for pattern, example in TABLE2_EXAMPLES.items():
        assert classify(example) is pattern

    # The paper's hypothesis: most code regions show predictable patterns.
    assert result.predictable_fraction() > 0.60

    # "perlbench exhibiting the highest number of Batch + Stride patterns"
    assert result.benchmark_with_most(Pattern.BATCH_STRIDE) == "perlbench"

    # lbm/deepsjeng-style benchmarks are Constant-dominated.
    sjeng = result.profiles["deepsjeng"].histogram
    assert sjeng.get(Pattern.CONSTANT, 0) >= max(
        count for pattern, count in sjeng.items()) - 1 if sjeng else True

    benchmark.extra_info["predictable_fraction"] = round(
        result.predictable_fraction(), 3)
