"""Regenerates Table III: hardware configuration of the simulated system."""

from conftest import once

from repro.eval import table3
from repro.pipeline.config import DEFAULT_CONFIG


def test_table3_hardware_configuration(benchmark):
    result = once(benchmark, table3.run)
    print("\n" + result.format_text())

    rows = result.rows
    # Every Table III value, verbatim.
    assert rows["Frequency"] == "3.4 GHz"
    assert rows["Fetch width"] == "4 fused uops"
    assert rows["Issue width"] == "6 unfused uops"
    assert rows["INT/FP Regfile"] == "180/168 regs"
    assert rows["RAS size"] == "64 entries"
    assert rows["LQ/SQ size"] == "72/56 entries"
    assert rows["Branch Predictor"] == "LTAGE"
    assert rows["I cache"] == "32 KB, 8 way"
    assert rows["D cache"] == "32 KB, 8 way"
    assert rows["ROB size"] == "224 entries"
    assert rows["IQ"] == "64 entries"
    assert rows["BTB size"] == "4096 entries"
    assert rows["Functional Units"] == (
        "Int ALU (6) / Mult (1), FPALU (3) / SIMD (3)")

    # The CHEx86 structure defaults from Sections IV-B / V-C.
    assert DEFAULT_CONFIG.capcache_entries == 64
    assert DEFAULT_CONFIG.aliascache_entries == 256
    assert DEFAULT_CONFIG.alias_victim_entries == 32
    assert DEFAULT_CONFIG.predictor_entries == 512
    assert DEFAULT_CONFIG.max_alloc_bytes == 1 << 30
