"""Regenerates Figure 9: memory storage overhead and bandwidth impact."""

from conftest import BUDGET, SCALE, once

from repro.eval import fig9


def test_fig9_storage_and_bandwidth(benchmark, engine):
    result = once(benchmark, lambda: fig9.run(scale=SCALE,
                                              max_instructions=BUDGET,
                                              engine=engine))
    print("\n" + result.format_text())

    # Paper: "we do not allocate any more shadow memory than the address
    # sanitizer, while performing significantly better."
    assert result.chex86_no_worse_than_asan()

    # Both defenses add storage over the insecure baseline.
    for bench, cells in result.rss.items():
        assert cells["ucode-prediction"] >= cells["insecure"], bench
        assert cells["asan"] >= cells["insecure"], bench

    # Paper: "we do not observe any significant change in the memory
    # bandwidth usage", with pointer-intensive outliers "contained at an
    # acceptable limit": the median benchmark is essentially unchanged and
    # even the worst outlier stays within a single-digit factor.
    assert result.median_bandwidth_increase() < 0.30
    assert max(result.bandwidth_ratios()) < 6.0

    benchmark.extra_info.update({
        "median_bandwidth_increase_pct": round(
            100 * result.median_bandwidth_increase(), 1),
        "avg_bandwidth_increase_pct": round(
            100 * result.average_bandwidth_increase(), 1),
    })
