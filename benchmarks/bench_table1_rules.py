"""Regenerates Table I: the pointer-tracking rule database, including the
automated construction process of Section V-A."""

from conftest import SCALE, once

from repro.core.rules import RuleDatabase
from repro.eval import table1


def test_table1_rule_database(benchmark):
    result = once(benchmark, lambda: table1.run(scale=SCALE,
                                                max_instructions=100_000))
    print("\n" + result.format_text())

    # The construction process converges (up to coincidental collisions).
    assert result.converged
    # The alias-tracking pair must be learned from profiling.
    assert "ld" in result.rules_learned
    assert "st" in result.rules_learned

    # The full database has the Table I shape: 12 rules + default row.
    full = RuleDatabase.table1()
    assert len(full) == 12
    rows = full.to_rows()
    assert rows[-1]["uop"] == "all other operations"
    assert sum(1 for r in rows if not r["learned"]) == 4  # 3 seed + default

    benchmark.extra_info["rules_learned"] = ",".join(result.rules_learned)
