"""Regenerates Figure 6: normalized performance and uop expansion.

The paper's headline results this bench asserts in *shape*:

* prediction-driven microcode always outperforms the always-on strategy;
* it consistently outperforms the binary-translation variant;
* it supersedes hardware-only on the memory-intensive pointer-heavy
  benchmarks (leela, mcf, xalancbmk);
* CHEx86 runs a large factor faster than AddressSanitizer (paper: 59%
  on SPEC, 2.2x on PARSEC) while staying within tens of percent of the
  insecure baseline (paper: 14% SPEC / 9% PARSEC);
* CHEx86's uop expansion is small while ASan more than doubles the
  dynamic instruction count.
"""

from conftest import BUDGET, SCALE, once

from repro.eval import fig6


def test_fig6_performance_and_uop_expansion(benchmark, engine):
    result = once(benchmark, lambda: fig6.run(scale=SCALE,
                                              max_instructions=BUDGET,
                                              engine=engine))
    print("\n" + result.format_text())
    perf = result.normalized_performance()
    expansion = result.uop_expansion()

    for bench, cells in perf.items():
        # Prediction-driven beats always-on and binary translation.  The
        # tolerance absorbs cold-start P0AN flushes that these short runs
        # cannot amortize the way the paper's billion-instruction runs do.
        assert cells["ucode-prediction"] >= cells["ucode-always-on"] - 0.035, bench
        assert cells["ucode-prediction"] >= cells["binary-translation"] - 0.035, bench
        # Every CHEx86 variant beats ASan.
        assert cells["ucode-prediction"] > cells["asan"], bench

    # Suite-level, the ordering is strict: prediction-driven is the
    # fastest protected microcode design point.
    assert (result.mean_slowdown("ucode-prediction", None)
            < result.mean_slowdown("ucode-always-on", None))
    assert (result.mean_slowdown("ucode-prediction", None)
            < result.mean_slowdown("binary-translation", None))

    # Prediction supersedes hardware-only on the paper's three outliers.
    for bench in ("leela", "mcf", "xalancbmk"):
        assert perf[bench]["ucode-prediction"] >= perf[bench]["hw-only"] - 0.01, bench

    # Suite-level headlines.
    spec_slowdown = result.mean_slowdown("ucode-prediction", "SPEC")
    parsec_slowdown = result.mean_slowdown("ucode-prediction", "PARSEC")
    assert spec_slowdown < 0.25      # paper: 14%
    assert parsec_slowdown < 0.20    # paper: 9%
    assert result.speedup_over_asan("SPEC") > 1.3    # paper: 1.59x
    assert result.speedup_over_asan("PARSEC") > 1.3  # paper: 2.2x

    # uop expansion: CHEx86 small, ASan doubles (on pointer-heavy SPEC).
    for bench, cells in expansion.items():
        assert cells["ucode-prediction"] <= cells["ucode-always-on"] + 1e-9
        assert cells["asan"] > cells["ucode-prediction"]
    spec_asan = [expansion[b]["asan"] for b, cells in result.runs.items()
                 if cells["asan"].suite == "SPEC"]
    assert sum(spec_asan) / len(spec_asan) > 1.8

    benchmark.extra_info.update({
        "spec_slowdown_pct": round(100 * spec_slowdown, 1),
        "parsec_slowdown_pct": round(100 * parsec_slowdown, 1),
        "speedup_over_asan_spec": round(result.speedup_over_asan("SPEC"), 2),
        "speedup_over_asan_parsec": round(
            result.speedup_over_asan("PARSEC"), 2),
    })
