"""Regenerates Figure 3: benchmark memory allocation behaviour."""

from conftest import BUDGET, SCALE, once

from repro.eval import fig3


def test_fig3_allocation_behaviour(benchmark):
    result = once(benchmark, lambda: fig3.run(scale=SCALE,
                                              max_instructions=BUDGET))
    print("\n" + result.format_text())
    profiles = {p.benchmark: p for p in result.profiles}

    # The figure's structural claim: total >= max-live >= in-use.
    assert result.gaps_hold()
    for profile in result.profiles:
        assert profile.total_allocations >= profile.max_live
        assert profile.max_live >= profile.avg_in_use_per_interval - 1e-9

    # Relative ordering from the paper's chart: xalancbmk among the
    # heaviest allocators, lbm among the lightest.
    assert profiles["xalancbmk"].total_allocations == max(
        p.total_allocations for p in result.profiles if p.benchmark in
        ("perlbench", "gcc", "mcf", "xalancbmk", "deepsjeng", "leela",
         "lbm", "nab"))
    assert profiles["lbm"].total_allocations <= 4
    # The capability-cache motivation: average in-use fits a small cache.
    assert result.average_in_use() < 512
    benchmark.extra_info["avg_in_use"] = round(result.average_in_use(), 1)
