"""Regenerates Figure 1: root cause of CVEs by patch year."""

from conftest import once

from repro.eval import fig1


def test_fig1_cve_root_causes(benchmark):
    result = once(benchmark, fig1.run)
    print("\n" + result.format_text())
    # The figure's headline: memory safety ~70% of CVEs, every year.
    assert 65 <= result.average_memory_safety <= 78
    for year in result.years:
        assert year.memory_safety_share >= 60
    assert result.years[0].year == 2006 and result.years[-1].year == 2018
    benchmark.extra_info["avg_memory_safety_pct"] = round(
        result.average_memory_safety, 1)
