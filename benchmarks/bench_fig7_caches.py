"""Regenerates Figure 7: capability / alias cache miss rates."""

from conftest import BUDGET, SCALE, once

from repro.eval import fig7


def test_fig7_cache_miss_rates(benchmark, engine):
    result = once(benchmark, lambda: fig7.run(scale=SCALE,
                                              max_instructions=BUDGET,
                                              engine=engine))
    print("\n" + result.format_text())

    # Shape: a bigger cache never has a (meaningfully) higher miss rate.
    assert result.bigger_is_never_worse()

    # Paper: the 64-entry capability cache misses ~2.1% on average — a
    # small cache suffices because few allocations are in use at a time.
    assert result.average_capcache_miss(64) < 0.10
    assert result.average_capcache_miss(128) <= result.average_capcache_miss(64) + 0.01

    # Paper: the alias cache averages 17.3%, dominated by outliers; the
    # average should sit well below half.
    assert result.average_aliascache_miss(256) < 0.35

    benchmark.extra_info.update({
        "capcache64_miss_pct": round(100 * result.average_capcache_miss(64), 2),
        "aliascache256_miss_pct": round(
            100 * result.average_aliascache_miss(256), 2),
    })
