"""Shared configuration for the per-figure/table benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
the paper-shaped rows/series (run ``pytest benchmarks/ --benchmark-only -s``
to see them), asserts the paper's qualitative claims on the result, and
records the headline numbers in ``benchmark.extra_info``.

The figure/table benchmarks share one :class:`~repro.eval.EvalEngine`
per session, so overlapping cells (e.g. Figure 6's default grid inside
Figure 7's sweeps) are simulated once.  Engine knobs:

``--jobs N``
    Parallel simulation workers (default: all CPUs).
``--no-cache``
    Disable the on-disk cell cache (in-memory memoization stays on).
``--cache-dir DIR``
    Cell cache location (default: ``results/.cellcache``).
"""

import pytest

from repro.eval.engine import DEFAULT_CACHE_DIR, EvalEngine

#: Workload scale used across the harness (1 = quick, CI-sized runs).
SCALE = 1

#: Instruction budget per benchmark run.
BUDGET = 2_000_000


def pytest_addoption(parser):
    group = parser.getgroup("repro evaluation engine")
    group.addoption("--jobs", type=int, default=None,
                    help="parallel simulation workers (default: all CPUs)")
    group.addoption("--no-cache", action="store_true",
                    help="disable the on-disk cell cache")
    group.addoption("--cache-dir", default=DEFAULT_CACHE_DIR,
                    help="cell cache directory")


@pytest.fixture(scope="session")
def engine(request):
    """One shared evaluation engine for the whole benchmark session."""
    return EvalEngine(jobs=request.config.getoption("--jobs"),
                      cache_dir=request.config.getoption("--cache-dir"),
                      use_cache=not request.config.getoption("--no-cache"))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
