"""Shared configuration for the per-figure/table benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
the paper-shaped rows/series (run ``pytest benchmarks/ --benchmark-only -s``
to see them), asserts the paper's qualitative claims on the result, and
records the headline numbers in ``benchmark.extra_info``.
"""

import pytest

#: Workload scale used across the harness (1 = quick, CI-sized runs).
SCALE = 1

#: Instruction budget per benchmark run.
BUDGET = 2_000_000


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
