#!/usr/bin/env python
"""Checkpointed SimPoint sampling benchmark: accuracy and speedup.

Runs one Figure-6 cell twice — end to end, and through the sampled
``profile → select → checkpoint → replay`` path — and writes the
comparison to ``BENCH_simpoint.json``.  Two numbers matter:

* **accuracy**: worst relative error across the headline counters
  (cycles, uops, injected uops, squash cycles, DRAM bytes) of the
  SimPoint estimate against the exact full run.  CI fails when it
  exceeds ``--max-error`` (default 10%).
* **detailed-simulation speedup**: full-run seconds over replay
  seconds.  Replay is the only part that scales with defense count —
  one insecure-variant profile and one checkpoint pass amortise over
  every defense column of a figure — so the report also records the
  profile and checkpoint costs separately rather than folding them in.

Standalone usage::

    PYTHONPATH=src python benchmarks/bench_simpoint.py --max-error 0.10
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import __version__  # noqa: E402
from repro.eval.engine import CellSpec, EvalEngine  # noqa: E402
from repro.eval.sampling import (  # noqa: E402
    DEFAULT_INTERVAL,
    DEFAULT_MAX_K,
    SamplingEngine,
    SimPointPlan,
)

#: Headline counters the accuracy gate checks (the ones the figures
#: are drawn from).
HEADLINE = ("cycles", "uops", "injected_uops", "squash_cycles",
            "dram_bytes")

DEFAULT_OUT = "BENCH_simpoint.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="mcf",
                        help="fig6 benchmark to sample (default mcf)")
    parser.add_argument("--defense", default="ucode-prediction",
                        help="defense column (default ucode-prediction)")
    parser.add_argument("--scale", type=int, default=8,
                        help="workload scale (default 8: long enough to "
                             "span ~10 sampling intervals)")
    parser.add_argument("--budget", type=int, default=2_000_000,
                        help="instruction budget (default 2M, the fig6 "
                             "cell size)")
    parser.add_argument("--interval", type=int, default=20_000,
                        help="sampling interval (default 20000, sized for "
                             "the CI cell; bursty counters like squash "
                             "cycles need intervals this coarse — "
                             f"--simpoint runs default to "
                             f"{DEFAULT_INTERVAL})")
    parser.add_argument("--max-k", type=int, default=DEFAULT_MAX_K,
                        help=f"simulation-point cap (default {DEFAULT_MAX_K})")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--max-error", type=float, default=0.10,
                        help="fail when the worst headline relative error "
                             "exceeds this fraction (default 0.10)")
    args = parser.parse_args(argv)

    spec = CellSpec(workload=args.workload, defense=args.defense,
                    scale=args.scale, max_instructions=args.budget)

    started = time.perf_counter()
    full = EvalEngine(jobs=1, use_cache=False).get(spec)
    full_seconds = time.perf_counter() - started
    print(f"full run:   {full.instructions:>9,} instr  "
          f"{full.cycles:>10,} cycles  {full_seconds:.2f}s")

    # A throwaway cache dir keeps bench checkpoints and interval cells
    # out of the committed results cache.
    scratch = tempfile.mkdtemp(prefix="bench-simpoint-")
    try:
        engine = EvalEngine(jobs=2, cache_dir=scratch)
        sampler = SamplingEngine(
            engine,
            plan=SimPointPlan(interval=args.interval, max_k=args.max_k),
            echo=print)
        started = time.perf_counter()
        estimate = sampler.get(spec)
        sampled_seconds = time.perf_counter() - started
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if not sampler.estimates:
        print(f"error: cell {args.workload}/{args.defense} was not "
              f"eligible for sampling (too short for interval "
              f"{args.interval}? multi-threaded?)", file=sys.stderr)
        return 2
    record = sampler.estimates[-1]
    replay_seconds = max(
        sampled_seconds - record.profile_seconds - record.checkpoint_seconds,
        1e-9)
    speedup = full_seconds / replay_seconds

    errors = {}
    for name in HEADLINE:
        exact, approx = getattr(full, name), getattr(estimate, name)
        errors[name] = abs(approx - exact) / exact if exact else 0.0
        print(f"{name:>16}: full={exact:>12,} est={approx:>12,} "
              f"err={errors[name]:.2%}")
    worst = max(errors.values())
    print(f"simpoint:   {record.points} point(s) / {record.intervals} "
          f"intervals, coverage {record.coverage:.0%}")
    print(f"wall: full={full_seconds:.2f}s  profile="
          f"{record.profile_seconds:.2f}s  checkpoint="
          f"{record.checkpoint_seconds:.2f}s  replay={replay_seconds:.2f}s")
    print(f"detailed-simulation speedup: {speedup:.2f}x  "
          f"(worst headline error {worst:.2%})")

    report = {
        "version": __version__,
        "cell": {"workload": args.workload, "defense": args.defense,
                 "scale": args.scale, "max_instructions": args.budget},
        "plan": {"interval": args.interval, "max_k": args.max_k},
        "full": {"seconds": round(full_seconds, 4),
                 **{name: getattr(full, name) for name in HEADLINE}},
        "simpoint": {
            "points": record.points,
            "intervals": record.intervals,
            "coverage": record.coverage,
            "profile_seconds": record.profile_seconds,
            "checkpoint_seconds": record.checkpoint_seconds,
            "replay_seconds": round(replay_seconds, 4),
            "detailed_sim_speedup": round(speedup, 4),
            "estimated": {name: getattr(estimate, name)
                          for name in HEADLINE},
            "relative_error": {name: round(err, 6)
                               for name, err in errors.items()},
            "worst_error": round(worst, 6),
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"-> {args.out}")

    if worst > args.max_error:
        print(f"FAIL: worst headline error {worst:.2%} exceeds "
              f"--max-error {args.max_error:.0%}", file=sys.stderr)
        return 1
    print("OK: estimate within the accuracy budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
