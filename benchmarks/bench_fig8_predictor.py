"""Regenerates Figure 8: alias misprediction rate and squash time."""

from conftest import BUDGET, SCALE, once

from repro.eval import fig8


def test_fig8_predictor_and_squash(benchmark, engine):
    result = once(benchmark, lambda: fig8.run(scale=SCALE,
                                              max_instructions=BUDGET,
                                              engine=engine))
    print("\n" + result.format_text())

    # Paper: pointer reload events are predicted with ~89% accuracy using
    # a simple stride scheme.
    assert result.average_accuracy(1024) > 0.80
    # A larger predictor should not be (meaningfully) worse.
    assert result.average_accuracy(2048) >= result.average_accuracy(1024) - 0.02

    # Paper: the squash-time contribution of alias mispredictions is
    # negligible — only a slight increase over the baseline.
    assert result.average_squash_increase() < 0.05
    for bench in result.squash_chex86:
        assert result.squash_chex86[bench] < 0.35

    benchmark.extra_info.update({
        "predictor_accuracy_pct": round(
            100 * result.average_accuracy(1024), 1),
        "squash_increase_pct": round(
            100 * result.average_squash_increase(), 2),
    })
