#!/usr/bin/env python3
"""OS integration: the MSR configuration flow of Section IV-C.

Shows the kernel-side sequence the paper describes, end to end:

1. at process creation the loader programs the CHEx86 MSRs — one
   registration slot per heap-management function (entry/exit addresses
   plus the register signature), the maximum-allocatable-size limit, and
   the protection-enable bit;
2. the attached core builds its interception set *from the MSR contents*;
3. MSR state is saved and restored across a context switch between two
   processes with different policies;
4. a process whose allocator the kernel never registered demonstrates the
   flip side: no registration, no capabilities, no protection.

Run:  python examples/os_integration.py
"""

from repro.core import Variant
from repro.heap import heap_library_asm
from repro.isa import assemble
from repro.kernel import MAX_REGISTRATIONS, ProcessLoader

BUGGY = """
main:
    mov rdi, 64
    call malloc
    mov [rax + 72], 1       ; out of bounds
    halt
""" + heap_library_asm()

GREEDY = """
main:
    mov rdi, 0x40000000     ; 1 GB in one gulp
    call malloc
    halt
""" + heap_library_asm()


def main() -> None:
    loader = ProcessLoader()

    print("=== process A: standard policy ===")
    process_a = loader.create_process(assemble(BUGGY, name="A"),
                                      variant=Variant.UCODE_PREDICTION)
    print(f"  MSR slots programmed: "
          f"{[r.name for r in loader.msr.registered_functions()]} "
          f"(limit {MAX_REGISTRATIONS} per process)")
    print(f"  max allocation: {loader.msr.max_alloc_bytes:,} bytes; "
          f"protection enabled: {loader.msr.protection_enabled}")
    machine = loader.attach_machine(process_a, halt_on_violation=True)
    result = machine.run()
    print(f"  -> {result.violations.violations[0]}")

    print("\n=== process B: tighter allocation policy (16 MB) ===")
    process_b = loader.create_process(assemble(GREEDY, name="B"),
                                      max_alloc_bytes=16 << 20)
    machine = loader.attach_machine(process_b, halt_on_violation=True)
    result = machine.run()
    print(f"  -> {result.violations.violations[0]}")

    print("\n=== context switch: per-process MSR state ===")
    loader.context_switch(process_a.pid)
    print(f"  running A: max alloc {loader.msr.max_alloc_bytes:,}")
    loader.context_switch(process_b.pid)
    print(f"  running B: max alloc {loader.msr.max_alloc_bytes:,}")

    print("\n=== the flip side: an unregistered allocator ===")
    custom = assemble("""
main:
    mov rdi, 64
    call my_pool_alloc
    mov [rax + 72], 1       ; the same bug...
    halt
my_pool_alloc:
    hostop heap_malloc
    ret
""", name="C")
    process_c = loader.create_process(custom)
    machine = loader.attach_machine(process_c, halt_on_violation=True)
    result = machine.run()
    print(f"  registered functions: "
          f"{[r.name for r in loader.msr.registered_functions()]}")
    print(f"  violations: {result.violations.count()} — the kernel never "
          f"told CHEx86 about my_pool_alloc, so its")
    print("  allocations carry no capabilities (the paper's 'unregistered "
          "heap management function' case).")


if __name__ == "__main__":
    main()
