#!/usr/bin/env python3
"""Spectre-v1 and why CHEx86's checks cannot be bypassed (Section III).

Spectre-v1 trains a branch predictor so that a *software* bounds check is
speculatively bypassed and an out-of-bounds load executes transiently.
CHEx86's capability check is different in kind: it is injected at the
CISC→RISC decode boundary as part of the *same macro-op* as the
dereference, so wherever the dereference goes — architecturally or down a
mispredicted path — its capCheck goes with it.

This example shows the two halves of that argument on the simulator:

1. the gadget's load receives an injected capCheck at decode, whose
   presence does not depend on the branch's direction or prediction;
2. with the software bounds check out of the picture entirely (the
   architectural equivalent of a perfect speculative bypass), the
   out-of-bounds access is still caught — by the capability, not the cmp.

Run:  python examples/spectre_v1.py
"""

from repro.core import Chex86Machine, Variant
from repro.heap import heap_library_asm
from repro.isa import Reg, assemble

GADGET = """
.global secret, 32, 0x53454352
main:
    mov rdi, 64
    call malloc
    mov rbx, rax            ; array1 = malloc(64); 8 elements
    mov rcx, {index}        ; attacker-influenced index x
    cmp rcx, 8
    jae out                 ; the software bounds check (Spectre target)
    mov rdx, [rbx + rcx*8]  ; array1[x]  <- the gadget load
out:
    halt
""" + heap_library_asm()

BYPASSED = """
main:
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rcx, {index}
    mov rdx, [rbx + rcx*8]  ; bounds check bypassed (speculation's effect)
    halt
""" + heap_library_asm()


def run(source: str, index: int):
    program = assemble(source.format(index=index), name="spectre")
    machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                            halt_on_violation=True)
    result = machine.run()
    return machine, result


def main() -> None:
    print("=== 1. the check travels with the dereference ===")
    for index in (3, 7):
        machine, result = run(GADGET, index)
        print(f"  index {index}: capChecks injected = "
              f"{machine.mcu.stats.capchecks}, flagged = {result.flagged}")
    print("  (the gadget load is guarded at decode — before any branch\n"
          "   outcome exists to be mispredicted)")

    print("\n=== 2. bypassing the software check changes nothing ===")
    machine, result = run(BYPASSED, index=40)
    violation = result.violations.violations[0]
    print(f"  out-of-bounds index 40 with NO software check: {violation}")
    print("  The capability check fired where the cmp/jae never existed —")
    print("  a transient bypass of the software check has nothing to "
          "bypass in CHEx86.")

    print("\n=== caveat (the paper's own) ===")
    print("  This covers Spectre-v1's bounds-check-bypass pattern; CHEx86")
    print("  makes no broader side-channel claims, and the guarantee")
    print("  depends on the implementation's TOC/TOU behaviour.")


if __name__ == "__main__":
    main()
