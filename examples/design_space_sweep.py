#!/usr/bin/env python3
"""Design-space sweep: the paper's Figure 6 on a workload of your choice.

Runs one benchmark under every design point — insecure baseline, the four
CHEx86 variants, and AddressSanitizer — and prints normalized performance,
uop expansion, and the shadow-structure statistics behind them.

Run:  python examples/design_space_sweep.py [benchmark] [scale]
      (default: mcf at scale 1; see repro.workloads.BENCHMARK_ORDER)
"""

import sys

from repro.analysis.report import render_bars, render_table
from repro.eval.common import FIG6_LABELS, run_benchmark
from repro.workloads import BENCHMARK_ORDER, build


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    if name not in BENCHMARK_ORDER:
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from {', '.join(BENCHMARK_ORDER)}")
    workload = build(name, scale)
    print(f"benchmark: {name} ({workload.suite}, "
          f"{workload.threads} thread(s))\n{workload.description}\n")

    runs = {}
    for label, defense in FIG6_LABELS:
        runs[label] = run_benchmark(workload, defense)
        print(f"  ran {label:20s} "
              f"{runs[label].cycles:>10,} cycles, "
              f"{runs[label].uops:>9,} uops")

    baseline = runs["insecure"]
    print()
    print(render_bars(
        {label: run.normalized_performance(baseline)
         for label, run in runs.items()},
        title="normalized performance (1.0 = insecure baseline)",
        max_value=1.0))
    print()
    print(render_bars(
        {label: run.uop_expansion_vs(baseline)
         for label, run in runs.items() if label != "insecure"},
        title="dynamic uop expansion (x baseline)"))
    print()
    rows = []
    for label, run in runs.items():
        if label in ("insecure", "asan"):
            continue
        rows.append([
            label,
            f"{run.capcache_miss_rate:.1%}",
            f"{run.aliascache_miss_rate:.1%}",
            f"{run.predictor_misprediction_rate:.1%}",
            f"{run.squash_fraction:.1%}",
            f"{run.shadow_rss_bytes / 1024:.0f} KB",
        ])
    print(render_table(
        ["variant", "cap$ miss", "alias$ miss", "reload mispredict",
         "squash time", "shadow storage"],
        rows, title="CHEx86 shadow-structure statistics"))


if __name__ == "__main__":
    main()
