#!/usr/bin/env python3
"""Rule auto-construction: rebuilding Table I from a three-rule seed.

Reproduces Section V-A's process.  Start with the expert seed (pointer
copies and ADD arithmetic only), profile workloads with the hardware
checker co-processor validating every tracked result against an exhaustive
shadow-table search, and watch the database grow one rule per round until
a profiling pass comes back clean.

Also demonstrates *why* the rules matter: with the LD/ST pair removed, a
use-after-free reached through a spilled pointer sails past undetected.

Run:  python examples/rule_learning.py
"""

from repro.analysis.report import render_table
from repro.core import Chex86Machine, RuleDatabase, Variant
from repro.eval import table1
from repro.heap import heap_library_asm
from repro.isa import assemble

SPILLED_UAF = """
.global cell, 16
main:
    mov rdi, 64
    call malloc
    mov rbx, [cell.addr]
    mov [rbx], rax          ; spill the pointer (needs the ST rule)
    mov rdi, rax
    call free
    mov rax, 0
    mov rbx, [cell.addr]
    mov rcx, [rbx]          ; reload it (needs the LD rule)
    mov rdx, [rcx]          ; use-after-free through the alias
    halt
""" + heap_library_asm()


def detection_with(db: RuleDatabase) -> bool:
    program = assemble(SPILLED_UAF, name="spilled-uaf")
    machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                            rules=db, halt_on_violation=False)
    return machine.run().flagged


def main() -> None:
    print("=== why the rule database matters ===")
    print(f"UAF through a spilled alias, full Table I: "
          f"{'DETECTED' if detection_with(RuleDatabase.table1()) else 'missed'}")
    crippled = RuleDatabase.table1()
    crippled.remove("ld")
    crippled.remove("st")
    print(f"same exploit, LD/ST rules removed:        "
          f"{'detected' if detection_with(crippled) else 'MISSED'}")

    print("\n=== automated construction from the seed ===")
    result = table1.run(scale=1, max_instructions=100_000)
    for step in result.history:
        action = (f"added rule '{step.rule_added}'" if step.rule_added
                  else "clean — done")
        print(f"  round {step.round}: {step.mismatches:5d} checker "
              f"mismatches -> {action}")
    print(f"converged: {result.converged} "
          f"(residual {result.residual_mismatches} coincidental "
          f"collisions out of {result.validations} validations)\n")

    rows = [[r["uop"], r["addr_mode"], r["propagation"],
             "learned" if r["learned"] else "seed"]
            for r in result.database.to_rows()]
    print(render_table(["uop", "addr mode", "propagation", "origin"], rows,
                       title="the constructed database (paper Table I)"))


if __name__ == "__main__":
    main()
