#!/usr/bin/env python3
"""Temporal pointer access patterns and the reload predictor (Table II).

Traces the PID sequences that individual load instructions reload across
the SPEC workload analogues, classifies each site with the Table II
taxonomy, and shows how predictor accuracy tracks pattern predictability —
the paper's core hypothesis: "temporal pointer access patterns of many
applications are highly predictable."

Run:  python examples/pointer_patterns.py
"""

from repro.analysis.patterns import Pattern, classify, profile_patterns
from repro.analysis.report import render_table
from repro.core import Chex86Machine, Variant
from repro.isa import assemble
from repro.workloads import SPEC_NAMES, build


def main() -> None:
    print("=== the Table II taxonomy on its own example sequences ===")
    examples = {
        "31 31 31 31 31 31 31": (31, 31, 31, 31, 31, 31, 31),
        "13 16 19 22 25 28 31": (13, 16, 19, 22, 25, 28, 31),
        "11 11 11 15 15 15 15": (11, 11, 11, 15, 15, 15, 15),
        "26 27 28 26 27 28 26": (26, 27, 28, 26, 27, 28, 26),
        "26 23 29 27 24 30 28": (26, 23, 29, 27, 24, 30, 28),
        "26 23 29 31 29 34 40": (26, 23, 29, 31, 29, 34, 40),
    }
    for text, seq in examples.items():
        print(f"  {text}  ->  {classify(seq).value}")

    print("\n=== reload sites across the SPEC analogues ===")
    rows = []
    for name in SPEC_NAMES:
        workload = build(name, 1)
        machine = Chex86Machine(assemble(workload.source, name=name),
                                variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.trace_reloads = True
        machine.run(max_instructions=400_000)
        profile = profile_patterns(machine.reload_trace, min_events=6)
        stats = machine.reload_predictor.stats
        dominant = profile.dominant.value if profile.dominant else "-"
        rows.append([
            name,
            len(profile.per_pc),
            dominant,
            f"{stats.accuracy:.1%}",
            f"{stats.blacklist_filtered}",
            f"{stats.p0an}/{stats.pna0}/{stats.pman}",
        ])
    print(render_table(
        ["benchmark", "reload sites", "dominant pattern",
         "predictor accuracy", "blacklist filtered", "P0AN/PNA0/PMAN"],
        rows))
    print("\n(the stride predictor exploits exactly these patterns; the "
          "P0AN column is the only misprediction class that costs a "
          "pipeline flush)")


if __name__ == "__main__":
    main()
