#!/usr/bin/env python3
"""Quickstart: secure an unmodified binary with CHEx86.

Assembles a small program with a latent heap bug, runs it on the insecure
baseline (where the bug silently corrupts a neighbouring allocation), then
runs the *same unmodified program* on a CHEx86 machine, which flags the
out-of-bounds write at the first offending micro-op — no recompilation, no
source changes, exactly the paper's pitch.

Run:  python examples/quickstart.py
"""

from repro.core import Chex86Machine, Variant
from repro.heap import heap_library_asm
from repro.isa import Reg, assemble

# A program with a wrong loop bound: it initializes 11 words of an 8-word
# (64-byte) buffer, walking across the allocator's chunk padding and
# metadata into the neighbouring allocation.
SOURCE = """
main:
    mov rdi, 64
    call malloc
    mov rbx, rax            ; table = malloc(64)
    mov rdi, 64
    call malloc
    mov r12, rax            ; neighbour = malloc(64)
    mov [r12], 7777         ; neighbour->magic = 7777

    mov rcx, 0
init:
    mov [rbx + rcx*8], rcx  ; table[i] = i ... for i in 0..10 (bad bound!)
    add rcx, 1
    cmp rcx, 11
    jne init

    mov rdx, [r12]          ; read back neighbour->magic
    halt
""" + heap_library_asm()


def main() -> None:
    program = assemble(SOURCE, name="quickstart")

    print("=== Insecure baseline x86 ===")
    machine = Chex86Machine(program, variant=Variant.INSECURE)
    result = machine.run()
    magic = machine.regs[Reg.RDX]
    print(f"ran {result.instructions} instructions, "
          f"{result.cycles} cycles (IPC {result.ipc:.2f})")
    print(f"neighbour->magic after the loop: {magic} "
          f"{'(CORRUPTED!)' if magic != 7777 else ''}")

    print("\n=== CHEx86, microcode prediction-driven ===")
    machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                            halt_on_violation=True)
    result = machine.run()
    print(f"ran {result.instructions} instructions before trapping")
    for violation in result.violations.violations:
        print(f"flagged: {violation}")
    print(f"injected {result.injected_uops} capability micro-ops "
          f"({result.uop_expansion:.2f}x uop expansion)")
    magic = machine.memory.peek_word(machine.regs[Reg.R12])
    print(f"neighbour->magic: {magic} (intact — the write never retired)")


if __name__ == "__main__":
    main()
